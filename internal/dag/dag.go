// Package dag implements the round-structured directed acyclic graph that
// underlies DAG-Rider-style consensus (paper §4.1).
//
// Vertices are identified by (source, round): reliable broadcast guarantees
// that correct processes deliver at most one vertex per source per round,
// so no digests are needed for identity. Strong edges point to vertices of
// the previous round; weak edges point to older vertices not already
// reachable, which is how the protocol guarantees eventual delivery of
// every broadcast block (validity).
package dag

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// VertexRef identifies a vertex.
type VertexRef struct {
	Source types.ProcessID
	Round  int
}

// String implements fmt.Stringer.
func (r VertexRef) String() string { return fmt.Sprintf("%v@r%d", r.Source, r.Round) }

// Vertex is one node of the DAG: a block of transactions plus references.
type Vertex struct {
	Source      types.ProcessID
	Round       int
	Block       []string // transactions carried by this vertex
	StrongEdges []VertexRef
	WeakEdges   []VertexRef
}

// Ref returns the vertex's identity.
func (v *Vertex) Ref() VertexRef { return VertexRef{Source: v.Source, Round: v.Round} }

// Parents returns all references (strong then weak).
func (v *Vertex) Parents() []VertexRef {
	out := make([]VertexRef, 0, len(v.StrongEdges)+len(v.WeakEdges))
	out = append(out, v.StrongEdges...)
	out = append(out, v.WeakEdges...)
	return out
}

// DAG is one process's local copy of the graph. The zero value is not
// usable; call New.
//
// Round storage is base-offset: rounds[i] holds round base+i, and pruning
// advances base. This is what makes GC actually bound memory over an
// unbounded service run — the slice length tracks the live round window
// (pruned rounds are dropped from the front, not just nil-ed in place), so
// the backing array stays O(window) no matter how many rounds have passed.
type DAG struct {
	n      int
	base   int // round number of rounds[0]; rounds below base are pruned
	rounds []map[types.ProcessID]*Vertex
}

// New creates an empty DAG for n processes.
func New(n int) *DAG {
	return &DAG{n: n}
}

// roundMap returns round r's storage, or nil when r is pruned or beyond the
// allocated window.
func (d *DAG) roundMap(r int) map[types.ProcessID]*Vertex {
	i := r - d.base
	if i < 0 || i >= len(d.rounds) {
		return nil
	}
	return d.rounds[i]
}

// ensureRound grows the per-round storage.
func (d *DAG) ensureRound(r int) map[types.ProcessID]*Vertex {
	for len(d.rounds) <= r-d.base {
		d.rounds = append(d.rounds, map[types.ProcessID]*Vertex{})
	}
	return d.rounds[r-d.base]
}

// Add inserts v. It returns an error if a different vertex from the same
// source already occupies the round (reliable broadcast should prevent
// this) or if any referenced parent is absent (callers must buffer until
// the causal history is complete, Algorithm 4 line 96).
func (d *DAG) Add(v *Vertex) error {
	if v.Round < 0 {
		return fmt.Errorf("dag: negative round %d", v.Round)
	}
	if v.Round < d.base {
		return fmt.Errorf("dag: round %d already pruned (watermark %d)", v.Round, d.base)
	}
	for _, ref := range v.Parents() {
		if _, ok := d.Get(ref); !ok {
			return fmt.Errorf("dag: missing parent %v of %v", ref, v.Ref())
		}
	}
	slot := d.ensureRound(v.Round)
	if old, ok := slot[v.Source]; ok && old != v {
		return fmt.Errorf("dag: duplicate vertex for %v", v.Ref())
	}
	slot[v.Source] = v
	return nil
}

// Get returns the vertex with the given identity.
func (d *DAG) Get(ref VertexRef) (*Vertex, bool) {
	v, ok := d.roundMap(ref.Round)[ref.Source]
	return v, ok
}

// Contains reports whether ref is present.
func (d *DAG) Contains(ref VertexRef) bool {
	_, ok := d.Get(ref)
	return ok
}

// HasAllParents reports whether every vertex referenced by v is present —
// the insertion precondition of Algorithm 4 line 96.
func (d *DAG) HasAllParents(v *Vertex) bool {
	for _, ref := range v.Parents() {
		if !d.Contains(ref) {
			return false
		}
	}
	return true
}

// RoundSources returns the set of processes with a vertex in round r.
func (d *DAG) RoundSources(r int) types.Set {
	s := types.NewSet(d.n)
	//lint:ordered Set.Add is commutative; the same set results in any order
	for src := range d.roundMap(r) {
		s.Add(src)
	}
	return s
}

// RoundVertices returns the vertices of round r sorted by source (a
// deterministic order shared by all processes).
func (d *DAG) RoundVertices(r int) []*Vertex {
	m := d.roundMap(r)
	if len(m) == 0 {
		return nil
	}
	out := make([]*Vertex, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// Height returns one past the highest round with storage allocated.
func (d *DAG) Height() int { return d.base + len(d.rounds) }

// VertexCount returns the total number of vertices.
func (d *DAG) VertexCount() int {
	total := 0
	for _, r := range d.rounds {
		total += len(r)
	}
	return total
}

// StrongPath reports whether there is a path from `from` to `to` using
// only strong edges. Paths go backwards in rounds; from.Round must be
// greater than to.Round (equal refs return true).
func (d *DAG) StrongPath(from, to VertexRef) bool {
	return d.path(from, to, false)
}

// Path reports whether there is a path from `from` to `to` using strong
// and weak edges.
func (d *DAG) Path(from, to VertexRef) bool {
	return d.path(from, to, true)
}

func (d *DAG) path(from, to VertexRef, useWeak bool) bool {
	if from == to {
		return true
	}
	if from.Round <= to.Round {
		return false
	}
	visited := map[VertexRef]bool{}
	stack := []VertexRef{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[cur] {
			continue
		}
		visited[cur] = true
		v, ok := d.Get(cur)
		if !ok {
			continue
		}
		edges := v.StrongEdges
		if useWeak {
			edges = v.Parents()
		}
		for _, ref := range edges {
			if ref == to {
				return true
			}
			if ref.Round > to.Round && !visited[ref] {
				stack = append(stack, ref)
			}
		}
	}
	return false
}

// StrongReachCount returns how many round-r vertices have a strong path to
// target (used by commit rules).
func (d *DAG) StrongReachCount(r int, target VertexRef) int {
	count := 0
	for _, v := range d.RoundVertices(r) {
		if d.StrongPath(v.Ref(), target) {
			count++
		}
	}
	return count
}

// StrongReachSources returns the set of sources of round-r vertices with a
// strong path to target.
func (d *DAG) StrongReachSources(r int, target VertexRef) types.Set {
	s := types.NewSet(d.n)
	for _, v := range d.RoundVertices(r) {
		if d.StrongPath(v.Ref(), target) {
			s.Add(v.Source)
		}
	}
	return s
}

// CausalHistory returns every vertex reachable from v (inclusive) via
// strong and weak edges, in the deterministic (round, source) order the
// delivery procedure uses (Algorithm 6, orderVertices).
func (d *DAG) CausalHistory(v VertexRef) []*Vertex {
	visited := map[VertexRef]bool{}
	var out []*Vertex
	stack := []VertexRef{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[cur] {
			continue
		}
		visited[cur] = true
		vv, ok := d.Get(cur)
		if !ok {
			continue
		}
		out = append(out, vv)
		stack = append(stack, vv.Parents()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Pruning support: DAG-Rider keeps the full graph (the paper flags its
// unbounded memory in §4.5); Bullshark-style garbage collection becomes
// safe once a round's vertices have all been delivered, because everything
// below a delivered vertex is delivered too (deliveries happen as whole
// causal histories). Pruned rounds read as absent: path traversals stop at
// them, which is sound for the remaining queries (commit rules and leader
// stacks only inspect rounds above the last decided wave).

// PruneBelow removes the contiguous prefix of rounds strictly below limit
// in which every vertex satisfies canPrune (typically "was delivered").
// It stops at the first round that does not qualify and returns the new
// watermark: the lowest retained round. Pruned rounds are dropped from the
// front of the storage window, so a long-lived run's memory tracks the
// live window, not the total round count.
func (d *DAG) PruneBelow(limit int, canPrune func(*Vertex) bool) int {
	dropped := 0
	for d.base+dropped < limit && dropped < len(d.rounds) {
		ok := true
		//lint:ordered false-latch over all vertices; the conjunction is order-free
		for _, v := range d.rounds[dropped] {
			if !canPrune(v) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		d.rounds[dropped] = nil // release the map before resliceing
		dropped++
	}
	if dropped > 0 {
		d.rounds = d.rounds[dropped:]
		d.base += dropped
	}
	return d.base
}

// PrunedBelow returns the lowest retained round (0 when nothing was
// pruned).
func (d *DAG) PrunedBelow() int { return d.base }
