package wire

import "testing"

// TestTagRangesWellFormed checks the central tag-range table the asymwire
// analyzer enforces: every range is ordered, stays below the
// test-reserved band, and is disjoint from every other package's range.
func TestTagRangesWellFormed(t *testing.T) {
	type claim struct {
		pkg string
		r   TagRange
	}
	var claims []claim
	for pkg, r := range TagRanges {
		claims = append(claims, claim{pkg, r})
	}
	for _, c := range claims {
		if c.r.Lo > c.r.Hi {
			t.Errorf("%s: inverted range [%d, %d]", c.pkg, c.r.Lo, c.r.Hi)
		}
		if c.r.Hi >= TestTagFloor {
			t.Errorf("%s: range [%d, %d] reaches the test-reserved band (>= %d)",
				c.pkg, c.r.Lo, c.r.Hi, TestTagFloor)
		}
	}
	for i, a := range claims {
		for _, b := range claims[i+1:] {
			if a.r.Lo <= b.r.Hi && b.r.Lo <= a.r.Hi {
				t.Errorf("ranges overlap: %s [%d, %d] and %s [%d, %d]",
					a.pkg, a.r.Lo, a.r.Hi, b.pkg, b.r.Lo, b.r.Hi)
			}
		}
	}
}
