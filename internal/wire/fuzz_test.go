package wire_test

import (
	"bytes"
	"testing"

	"repro/internal/types"
	"repro/internal/wire"
)

// FuzzReadPrimitives throws arbitrary bytes at every bounded-decode
// primitive. The contracts under test: no panic on any input, no
// allocation driven by an unvalidated length (errors instead), and a
// successful parse consumes a prefix whose re-encoding decodes to the
// same value (byte-level round-trips do not hold: varints accept
// non-minimal encodings).
func FuzzReadPrimitives(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(wire.AppendUvarint(nil, 1<<63))
	f.Add(wire.AppendString(nil, "hello"))
	f.Add(wire.AppendBytes(nil, bytes.Repeat([]byte{0xAB}, 300)))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // maximal-width varint
	f.Add(func() []byte {
		s := types.NewSet(70)
		s.Add(0)
		s.Add(69)
		return wire.AppendSet(nil, s)
	}())

	f.Fuzz(func(t *testing.T, b []byte) {
		if v, rest, err := wire.ReadUvarint(b); err == nil {
			if len(rest) >= len(b) {
				t.Fatalf("ReadUvarint consumed nothing")
			}
			v2, _, err := wire.ReadUvarint(wire.AppendUvarint(nil, v))
			if err != nil || v2 != v {
				t.Fatalf("uvarint value round-trip: %d -> %d, %v", v, v2, err)
			}
		}
		if v, _, err := wire.ReadInt(b, 1000); err == nil && (v < 0 || v > 1000) {
			t.Fatalf("ReadInt returned %d outside [0, 1000]", v)
		}
		if s, _, err := wire.ReadString(b); err == nil {
			if len(s) > wire.MaxStringLen {
				t.Fatalf("ReadString returned %d bytes, over MaxStringLen", len(s))
			}
			s2, _, err := wire.ReadString(wire.AppendString(nil, s))
			if err != nil || s2 != s {
				t.Fatalf("string value round-trip failed: %v", err)
			}
		}
		if p, _, err := wire.ReadBytes(b); err == nil {
			if len(p) > wire.MaxStringLen {
				t.Fatalf("ReadBytes returned %d bytes, over MaxStringLen", len(p))
			}
			p2, _, err := wire.ReadBytes(wire.AppendBytes(nil, p))
			if err != nil || !bytes.Equal(p2, p) {
				t.Fatalf("bytes value round-trip failed: %v", err)
			}
		}
		if s, _, err := wire.ReadSet(b); err == nil {
			if s.UniverseSize() > wire.MaxUniverse {
				t.Fatalf("ReadSet universe %d over MaxUniverse", s.UniverseSize())
			}
			s2, _, err := wire.ReadSet(wire.AppendSet(nil, s))
			if err != nil || s2.UniverseSize() != s.UniverseSize() || s2.Count() != s.Count() {
				t.Fatalf("set value round-trip failed: %v", err)
			}
		}
	})
}

// fuzzMsg is a registered codec in the test tag band so FuzzDecode has a
// real decode path to walk (tag dispatch, nested primitives).
type fuzzMsg struct {
	Seq  uint64
	Name string
	Blob []byte
}

const fuzzMsgTag = wire.TestTagFloor + 90

func registerFuzzMsg() {
	wire.Register(fuzzMsgTag, fuzzMsg{}, wire.Codec{
		Size: func(msg any) (int, bool) {
			m := msg.(fuzzMsg)
			return wire.UvarintSize(m.Seq) + wire.StringSize(m.Name) + wire.BytesSize(m.Blob), true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			m := msg.(fuzzMsg)
			dst = wire.AppendUvarint(dst, m.Seq)
			dst = wire.AppendString(dst, m.Name)
			return wire.AppendBytes(dst, m.Blob), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			var m fuzzMsg
			var err error
			if m.Seq, b, err = wire.ReadUvarint(b); err != nil {
				return nil, b, err
			}
			if m.Name, b, err = wire.ReadString(b); err != nil {
				return nil, b, err
			}
			if m.Blob, b, err = wire.ReadBytes(b); err != nil {
				return nil, b, err
			}
			return m, b, nil
		},
	})
}

// FuzzDecode drives the tagged top-level decoder: arbitrary input must
// never panic, and anything that does decode must re-marshal and decode
// back to an equivalent value.
func FuzzDecode(f *testing.F) {
	registerFuzzMsg()
	seed, err := wire.Marshal(fuzzMsg{Seq: 7, Name: "seed", Blob: []byte{1, 2, 3}})
	if err != nil {
		f.Fatalf("marshaling seed: %v", err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, rest, err := wire.Decode(b)
		if err != nil {
			return
		}
		enc, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("decoded message does not re-marshal: %v", err)
		}
		msg2, rest2, err := wire.Decode(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-marshaled message does not decode cleanly: %v (%d leftover)", err, len(rest2))
		}
		_ = msg2
		_ = rest
	})
}
