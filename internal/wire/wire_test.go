package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// Test-local registrations use tags >= 1000 (reserved range).
type probeMsg struct{ V uint64 }

type probeMsg2 struct{ V uint64 }

func probeCodec() Codec {
	return Codec{
		Size:   func(msg any) (int, bool) { return UvarintSize(msg.(probeMsg).V), true },
		Append: func(dst []byte, msg any) ([]byte, error) { return AppendUvarint(dst, msg.(probeMsg).V), nil },
		Decode: func(b []byte) (any, []byte, error) {
			v, rest, err := ReadUvarint(b)
			if err != nil {
				return nil, b, err
			}
			return probeMsg{V: v}, rest, nil
		},
	}
}

func TestRegistrySemantics(t *testing.T) {
	Register(1000, probeMsg{}, probeCodec())
	Register(1000, probeMsg{}, probeCodec()) // idempotent re-registration

	if !Registered(probeMsg{}) {
		t.Fatal("probeMsg not registered")
	}
	if Registered(probeMsg2{}) {
		t.Fatal("probeMsg2 spuriously registered")
	}
	if _, ok := EncodedSize(probeMsg2{}); ok {
		t.Fatal("EncodedSize for unregistered type")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("tag reuse across types", func() { Register(1000, probeMsg2{}, probeCodec()) })
	mustPanic("type under second tag", func() { Register(1001, probeMsg{}, probeCodec()) })
	mustPanic("nil prototype", func() { Register(1002, nil, probeCodec()) })
	mustPanic("incomplete codec", func() { Register(1003, probeMsg2{}, Codec{}) })
}

func TestMarshalDecodeRoundTrip(t *testing.T) {
	Register(1000, probeMsg{}, probeCodec())
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1} {
		enc, err := Marshal(probeMsg{V: v})
		if err != nil {
			t.Fatal(err)
		}
		if sz, ok := EncodedSize(probeMsg{V: v}); !ok || sz != len(enc) {
			t.Fatalf("v=%d: EncodedSize %d, encoded %d", v, sz, len(enc))
		}
		dec, rest, err := Decode(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("v=%d: decode: %v", v, err)
		}
		if dec.(probeMsg).V != v {
			t.Fatalf("v=%d round-tripped to %d", v, dec.(probeMsg).V)
		}
	}
	if _, _, err := Decode([]byte{0xff}); err == nil {
		t.Fatal("truncated tag accepted")
	}
	if _, _, err := Decode(AppendUvarint(nil, 999999)); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestUvarintPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		b := AppendUvarint(nil, v)
		if len(b) != UvarintSize(v) {
			t.Fatalf("v=%d: size %d, encoded %d bytes", v, UvarintSize(v), len(b))
		}
		got, rest, err := ReadUvarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("v=%d: round trip got %d err %v", v, got, err)
		}
	}
	if _, _, err := ReadUvarint(nil); err == nil {
		t.Fatal("empty uvarint accepted")
	}
	if _, _, err := ReadInt(AppendInt(nil, 100), 99); err == nil {
		t.Fatal("out-of-bound int accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AppendInt did not panic")
		}
	}()
	AppendInt(nil, -1)
}

func TestStringAndBytesPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		raw := make([]byte, rng.Intn(200))
		rng.Read(raw)
		s := string(raw)
		b := AppendString(nil, s)
		if len(b) != StringSize(s) {
			t.Fatalf("StringSize mismatch: %d vs %d", StringSize(s), len(b))
		}
		got, rest, err := ReadString(b)
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("string round trip failed: %v", err)
		}
		bb := AppendBytes(nil, raw)
		if len(bb) != BytesSize(raw) {
			t.Fatalf("BytesSize mismatch")
		}
		gb, rest, err := ReadBytes(bb)
		if err != nil || !bytes.Equal(gb, raw) || len(rest) != 0 {
			t.Fatalf("bytes round trip failed: %v", err)
		}
	}
	// Length prefix beyond the data is truncation, not an allocation.
	if _, _, err := ReadString(AppendUvarint(nil, 50)); err == nil {
		t.Fatal("truncated string accepted")
	}
	// Length prefix beyond MaxStringLen is rejected outright.
	if _, _, err := ReadBytes(AppendUvarint(nil, MaxStringLen+1)); err == nil {
		t.Fatal("oversized bytes length accepted")
	}
}

func TestSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := rng.Intn(200)
		s := types.NewSet(n)
		for k := 0; k < n; k++ {
			if rng.Intn(2) == 0 {
				s.Add(types.ProcessID(k))
			}
		}
		b := AppendSet(nil, s)
		if len(b) != SetSize(s) {
			t.Fatalf("n=%d: SetSize %d, encoded %d", n, SetSize(s), len(b))
		}
		got, rest, err := ReadSet(b)
		if err != nil || len(rest) != 0 {
			t.Fatalf("n=%d: ReadSet: %v", n, err)
		}
		if got.UniverseSize() != n || !got.Equal(s) {
			t.Fatalf("n=%d: set round trip mismatch", n)
		}
	}
}

func TestSetDecodeRejectsAdversarial(t *testing.T) {
	// Stray bits beyond the declared universe must be rejected — they
	// would smuggle out-of-universe members past every quorum check.
	b := AppendUvarint(nil, 3)
	b = append(b, 0xFF, 0, 0, 0, 0, 0, 0, 0)
	if _, _, err := ReadSet(b); err == nil {
		t.Fatal("stray set bits accepted")
	}
	// A gigantic universe must be rejected before allocation.
	if _, _, err := ReadSet(AppendUvarint(nil, MaxUniverse+1)); err == nil {
		t.Fatal("oversized universe accepted")
	}
	// Truncated words.
	if _, _, err := ReadSet(AppendUvarint(nil, 100)); err == nil {
		t.Fatal("truncated set words accepted")
	}
}
