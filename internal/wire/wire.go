// Package wire implements the shared framed binary codec for protocol
// messages: a compact type-tag registry plus append-style encoding
// primitives.
//
// Every protocol message type registers a Codec (tag, exact size, encoder,
// decoder) at package init. The one registration serves two consumers that
// previously disagreed about message bytes:
//
//   - the deterministic simulator's byte metrics: sim.MessageSize returns
//     the exact encoded frame length for registered types, so simulated
//     BytesSent figures match what a real deployment puts on the wire;
//   - the TCP transport (internal/transport), whose writer path encodes
//     outbox drains into batched length-prefixed frames of these messages.
//
// A message frame is [uvarint tag][body]. The body layout is owned by the
// registering package and built from the primitives here: uvarints,
// length-prefixed strings and byte slices, and raw little-endian bitset
// words (the same word layout types.Set already exposes through Words and
// Key). Codec.Size must return the exact body length the encoder will
// produce — Marshal verifies the invariant on every call, which is what
// lets the simulator's metrics and the transport's frames stay equal by
// construction.
//
// Tag ranges are assigned centrally so independent packages cannot
// collide (Register panics on a conflict):
//
//	10–19  internal/broadcast (messages and payloads)
//	30–39  internal/gather
//	40–44  internal/core
//	45–49  internal/coin
//	50–59  internal/rider
//	60–69  internal/transport (tooling/benchmark messages)
//	70–74  internal/abba
//	75–79  internal/acs (instance envelope, nested-frame)
//	>=1000 reserved for test-local registrations
//
// Decoders must validate everything before it shapes an allocation or an
// index — bodies arrive from the network, possibly from Byzantine peers.
// The Max* limits here bound every length field a decoder trusts.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"reflect"
	"sync"

	"repro/internal/types"
)

// Decode limits. Every length field read off the wire is checked against
// one of these before it drives an allocation.
const (
	// MaxStringLen bounds one length-prefixed string or byte slice.
	MaxStringLen = 1 << 20
	// MaxCount bounds one repeated-element count (blocks, edges, pairs).
	MaxCount = 1 << 20
	// MaxUniverse bounds a bitset universe size (matches the bound the
	// gather package has always enforced on wire Pairs).
	MaxUniverse = 1 << 20
)

// ErrTruncated reports input that ended inside a field.
var ErrTruncated = errors.New("wire: truncated input")

// TagRange is one package's half of the central tag assignment: the
// inclusive [Lo, Hi] tag interval the package may register codecs in.
type TagRange struct {
	Lo, Hi uint64
}

// Contains reports whether tag falls in the range.
func (r TagRange) Contains(tag uint64) bool { return tag >= r.Lo && tag <= r.Hi }

// TestTagFloor is the first tag of the test-reserved band: non-test code
// must register below it, test-local registrations at or above it.
const TestTagFloor = 1000

// TagRanges is the central tag-range table from the package comment, as
// data: package import path -> assigned range. internal/lint's asymwire
// analyzer checks every wire.Register call site against it, and
// TestRangesDisjoint-style unit tests keep the table itself coherent.
// Extending the protocol with a new message-bearing package means adding
// a row here first.
var TagRanges = map[string]TagRange{
	"repro/internal/broadcast": {10, 19},
	"repro/internal/gather":    {30, 39},
	"repro/internal/core":      {40, 44},
	"repro/internal/coin":      {45, 49},
	"repro/internal/rider":     {50, 59},
	"repro/internal/transport": {60, 69},
	"repro/internal/abba":      {70, 74},
	"repro/internal/acs":       {75, 79},
	"repro/internal/register":  {80, 89},
}

// Codec describes how one message type encodes. All three functions
// receive the message boxed as `any` with the registered dynamic type.
type Codec struct {
	// Size returns the exact encoded body length of msg. The second
	// result is false when msg cannot be encoded at all (for example a
	// nested interface field holding an unregistered type).
	Size func(msg any) (int, bool)
	// Append appends msg's body to dst and returns the extended slice.
	Append func(dst []byte, msg any) ([]byte, error)
	// Decode parses one body from the front of b, returning the decoded
	// message and the remaining bytes.
	Decode func(b []byte) (any, []byte, error)
}

type entry struct {
	tag   uint64
	typ   reflect.Type
	codec Codec
}

var (
	regMu  sync.Mutex
	byType sync.Map // reflect.Type -> *entry
	byTag  sync.Map // uint64 -> *entry
)

// Register binds a tag and a Codec to prototype's dynamic type.
// Registration normally happens in package init; re-registering the same
// (tag, type) pair is a no-op (so explicit RegisterWire helpers stay safe
// to call repeatedly), while any conflict — tag reuse across types, or one
// type under two tags — panics immediately.
func Register(tag uint64, prototype any, c Codec) {
	typ := reflect.TypeOf(prototype)
	if typ == nil {
		panic("wire: Register with untyped nil prototype")
	}
	if c.Size == nil || c.Append == nil || c.Decode == nil {
		panic(fmt.Sprintf("wire: incomplete codec for %v", typ))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := byTag.Load(tag); ok {
		if prev.(*entry).typ == typ {
			return // idempotent re-registration
		}
		panic(fmt.Sprintf("wire: tag %d already registered for %v, cannot rebind to %v",
			tag, prev.(*entry).typ, typ))
	}
	if prev, ok := byType.Load(typ); ok {
		panic(fmt.Sprintf("wire: type %v already registered under tag %d, cannot rebind to %d",
			typ, prev.(*entry).tag, tag))
	}
	e := &entry{tag: tag, typ: typ, codec: c}
	byTag.Store(tag, e)
	byType.Store(typ, e)
}

func lookup(msg any) (*entry, bool) {
	e, ok := byType.Load(reflect.TypeOf(msg))
	if !ok {
		return nil, false
	}
	return e.(*entry), true
}

// Registered reports whether msg's dynamic type has a codec.
func Registered(msg any) bool {
	_, ok := lookup(msg)
	return ok
}

// EncodedSize returns the exact frame length ([uvarint tag][body]) msg
// would encode to. The second result is false when msg's dynamic type is
// not registered or the message is not encodable.
func EncodedSize(msg any) (int, bool) {
	e, ok := lookup(msg)
	if !ok {
		return 0, false
	}
	n, ok := e.codec.Size(msg)
	if !ok {
		return 0, false
	}
	return UvarintSize(e.tag) + n, true
}

// Append appends msg's frame (tag + body) to dst.
func Append(dst []byte, msg any) ([]byte, error) {
	e, ok := lookup(msg)
	if !ok {
		return dst, fmt.Errorf("wire: unregistered message type %T", msg)
	}
	dst = AppendUvarint(dst, e.tag)
	return e.codec.Append(dst, msg)
}

// Marshal encodes msg as one frame, verifying that the codec's Size
// matches the bytes actually produced (the invariant the simulator's byte
// metrics depend on).
func Marshal(msg any) ([]byte, error) {
	sz, sized := EncodedSize(msg)
	var dst []byte
	if sized {
		dst = make([]byte, 0, sz)
	}
	out, err := Append(dst, msg)
	if err != nil {
		return nil, err
	}
	if sized && len(out) != sz {
		return nil, fmt.Errorf("wire: %T encoded to %d bytes but Size reported %d", msg, len(out), sz)
	}
	return out, nil
}

// Decode parses one frame from the front of b, returning the message and
// the remaining bytes.
func Decode(b []byte) (any, []byte, error) {
	tag, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, b, fmt.Errorf("wire: frame tag: %w", err)
	}
	e, ok := byTag.Load(tag)
	if !ok {
		return nil, b, fmt.Errorf("wire: unknown message tag %d", tag)
	}
	return e.(*entry).codec.Decode(rest)
}

// Primitives. --------------------------------------------------------------

// UvarintSize returns the encoded length of v.
func UvarintSize(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// AppendUvarint appends the varint encoding of v.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// ReadUvarint parses a uvarint from the front of b.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrTruncated
	}
	return v, b[n:], nil
}

// IntSize returns the encoded length of a non-negative int (rounds, waves,
// sequence numbers). Encoding a negative value is a programming error and
// panics — no protocol field here is ever negative.
func IntSize(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("wire: negative int %d", v))
	}
	return UvarintSize(uint64(v))
}

// AppendInt appends a non-negative int as a uvarint.
func AppendInt(dst []byte, v int) []byte {
	if v < 0 {
		panic(fmt.Sprintf("wire: negative int %d", v))
	}
	return AppendUvarint(dst, uint64(v))
}

// ReadInt parses a non-negative int bounded by max (inclusive).
func ReadInt(b []byte, max int) (int, []byte, error) {
	v, rest, err := ReadUvarint(b)
	if err != nil {
		return 0, b, err
	}
	if v > uint64(max) {
		return 0, b, fmt.Errorf("wire: value %d exceeds bound %d", v, max)
	}
	return int(v), rest, nil
}

// StringSize returns the encoded length of a length-prefixed string.
func StringSize(s string) int { return UvarintSize(uint64(len(s))) + len(s) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString parses a length-prefixed string (≤ MaxStringLen). The result
// does not alias b.
func ReadString(b []byte) (string, []byte, error) {
	n, rest, err := ReadInt(b, MaxStringLen)
	if err != nil {
		return "", b, err
	}
	if n > len(rest) {
		return "", b, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// BytesSize returns the encoded length of a length-prefixed byte slice.
func BytesSize(b []byte) int { return UvarintSize(uint64(len(b))) + len(b) }

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadBytes parses a length-prefixed byte slice (≤ MaxStringLen). The
// result is a copy — decoders may reuse their input buffers.
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := ReadInt(b, MaxStringLen)
	if err != nil {
		return nil, b, err
	}
	if n > len(rest) {
		return nil, b, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// SetSize returns the encoded length of a bitset: uvarint universe size
// followed by the raw little-endian backing words.
func SetSize(s types.Set) int {
	return UvarintSize(uint64(s.UniverseSize())) + 8*len(s.Words())
}

// AppendSet appends a bitset as [uvarint n][raw LE words], reusing the
// word layout types.Set exposes through Words.
func AppendSet(dst []byte, s types.Set) []byte {
	dst = AppendUvarint(dst, uint64(s.UniverseSize()))
	for _, w := range s.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// ReadSet parses a bitset written by AppendSet. The universe is bounded by
// MaxUniverse and stray bits beyond it are rejected, so a Byzantine peer
// can neither force a huge allocation nor smuggle out-of-universe members.
func ReadSet(b []byte) (types.Set, []byte, error) {
	n, rest, err := ReadInt(b, MaxUniverse)
	if err != nil {
		return types.Set{}, b, fmt.Errorf("wire: set universe: %w", err)
	}
	wc := (n + 63) / 64
	if len(rest) < 8*wc {
		return types.Set{}, b, ErrTruncated
	}
	words := make([]uint64, wc)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	s, err := types.NewSetFromWords(n, words)
	if err != nil {
		return types.Set{}, b, err
	}
	return s, rest[8*wc:], nil
}
