package asymdag

import (
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/rider"
	"repro/internal/sim"
)

// ClusterConfig configures an in-process consensus cluster running the
// paper's asymmetric protocol.
type ClusterConfig struct {
	// Trust is the quorum assumption shared by all nodes (a Threshold or
	// an explicit *System).
	Trust Assumption
	// NumWaves bounds the run; nodes stop after round 4*NumWaves.
	NumWaves int
	// Seed drives the network schedule, CoinSeed the leader election.
	Seed, CoinSeed int64
	// Latency is the network model (default: uniform 1..20).
	Latency LatencyModel
	// BatchSize caps transactions per vertex (default 16).
	BatchSize int
	// MaxSteps bounds Run to that many delivered events (0 = the generous
	// DefaultMaxSteps, < 0 = unbounded). Without a bound, a non-quiescing
	// schedule — an adversarial latency model feeding a livelocked round,
	// say — hangs Run (and any sweep driving it) forever; the default cap
	// is far above what a legitimate run delivers, so hitting it signals a
	// runaway schedule rather than truncating real work. ClusterResult
	// reports a hit via HitLimit.
	MaxSteps int
	// DeliveryWorkers opts the run into the simulator's parallel
	// same-time delivery (0 = serial; see sim.Config.DeliveryWorkers).
	DeliveryWorkers int
}

// DefaultMaxSteps is the event budget Run applies when ClusterConfig
// leaves MaxSteps at 0 — the simulator-wide default shared by every
// protocol runner.
const DefaultMaxSteps = sim.DefaultEventBudget

// Cluster is a simulated deployment of the asymmetric DAG consensus: one
// node per process, an in-memory asynchronous network, and per-node
// transaction queues. Create with NewCluster, feed with Submit, execute
// with Run.
type Cluster struct {
	cfg    ClusterConfig
	queues []*rider.QueueWorkload
	nodes  []*core.Node
}

// NewCluster creates a cluster over cfg.Trust.N() processes.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.NumWaves <= 0 {
		cfg.NumWaves = 10
	}
	if cfg.Latency == nil {
		// The documented default. Leaving it nil used to fall through to
		// sim.NewRunner's ConstantLatency(1), a lockstep network that hides
		// the asynchrony the protocol is supposed to tolerate.
		cfg.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	n := cfg.Trust.N()
	c := &Cluster{cfg: cfg}
	cn := coin.NewPRF(cfg.CoinSeed, n)
	for i := 0; i < n; i++ {
		q := &rider.QueueWorkload{BatchSize: cfg.BatchSize}
		c.queues = append(c.queues, q)
		c.nodes = append(c.nodes, core.NewNode(core.Config{
			Trust:    cfg.Trust,
			Coin:     cn,
			Workload: q,
			MaxRound: 4 * cfg.NumWaves,
		}))
	}
	return c
}

// Submit enqueues transactions at the given process; they will be packed
// into its future vertices. Call before Run.
func (c *Cluster) Submit(p ProcessID, txs ...string) {
	c.queues[p].Submit(txs...)
}

// Run executes the cluster to network quiescence and returns the outcome.
// A Cluster is single-use: create a new one for another run.
func (c *Cluster) Run() ClusterResult {
	n := c.cfg.Trust.N()
	nodes := make([]sim.Node, n)
	for i, nd := range c.nodes {
		nodes[i] = nd
	}
	limit := sim.ResolveEventBudget(c.cfg.MaxSteps)
	r := sim.NewRunner(sim.Config{
		N: n, Seed: c.cfg.Seed, Latency: c.cfg.Latency,
		DeliveryWorkers: c.cfg.DeliveryWorkers,
	}, nodes)
	r.Run(limit)

	res := ClusterResult{
		orders:   make([][]string, n),
		commits:  make([]int, n),
		rounds:   make([]int, n),
		Messages: r.Metrics().MessagesSent,
		Bytes:    r.Metrics().BytesSent,
		VTime:    int64(r.Now()),
		HitLimit: limit > 0 && r.Pending() > 0,
	}
	for i, nd := range c.nodes {
		res.orders[i] = nd.DeliveredBlocks()
		res.commits[i] = len(nd.Commits())
		res.rounds[i] = nd.Round()
	}
	return res
}

// ClusterResult is the observable outcome of a cluster run.
type ClusterResult struct {
	// Messages and Bytes are total network costs; VTime is the virtual
	// time at quiescence.
	Messages, Bytes int
	VTime           int64
	// HitLimit reports that the run stopped at the MaxSteps event budget
	// with deliveries still pending, instead of reaching quiescence.
	HitLimit bool

	orders  [][]string
	commits []int
	rounds  []int
}

// Order returns the totally ordered transaction log delivered at process p.
func (r ClusterResult) Order(p ProcessID) []string {
	out := make([]string, len(r.orders[p]))
	copy(out, r.orders[p])
	return out
}

// Commits returns how many waves process p committed.
func (r ClusterResult) Commits(p ProcessID) int { return r.commits[p] }

// Round returns the final round of process p.
func (r ClusterResult) Round(p ProcessID) int { return r.rounds[p] }

// OrdersAgree reports whether every process's log is a prefix of the
// longest log — the observable form of the total-order property.
func (r ClusterResult) OrdersAgree() bool {
	longest := 0
	for i := range r.orders {
		if len(r.orders[i]) > len(r.orders[longest]) {
			longest = i
		}
	}
	for i := range r.orders {
		for k, tx := range r.orders[i] {
			if r.orders[longest][k] != tx {
				return false
			}
		}
	}
	return true
}
