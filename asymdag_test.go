package asymdag_test

import (
	"fmt"
	"testing"

	asymdag "repro"
)

func TestClusterQuickstartFlow(t *testing.T) {
	trust := asymdag.NewThreshold(4, 1)
	cluster := asymdag.NewCluster(asymdag.ClusterConfig{
		Trust:    trust,
		NumWaves: 8,
		Seed:     1,
		CoinSeed: 2,
	})
	var submitted []string
	for p := 0; p < 4; p++ {
		for k := 0; k < 5; k++ {
			tx := fmt.Sprintf("tx-%d-%d", p, k)
			submitted = append(submitted, tx)
			cluster.Submit(asymdag.ProcessID(p), tx)
		}
	}
	res := cluster.Run()
	if !res.OrdersAgree() {
		t.Fatal("delivered orders diverge")
	}
	if res.Messages == 0 || res.VTime == 0 {
		t.Error("metrics look empty")
	}
	// At least one node delivered all submitted transactions.
	want := map[string]bool{}
	for _, tx := range submitted {
		want[tx] = true
	}
	best := 0
	for p := 0; p < 4; p++ {
		got := 0
		for _, tx := range res.Order(asymdag.ProcessID(p)) {
			if want[tx] {
				got++
			}
		}
		if got > best {
			best = got
		}
		if res.Round(asymdag.ProcessID(p)) < 32 {
			t.Errorf("process %d stalled at round %d", p, res.Round(asymdag.ProcessID(p)))
		}
	}
	if best < len(submitted) {
		t.Errorf("best node delivered %d of %d submitted txs", best, len(submitted))
	}
	committed := 0
	for p := 0; p < 4; p++ {
		if res.Commits(asymdag.ProcessID(p)) > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("nobody committed")
	}
}

func TestClusterOnAsymmetricSystem(t *testing.T) {
	sys := asymdag.Counterexample()
	if testing.Short() {
		t.Skip("30-process run is slow")
	}
	cluster := asymdag.NewCluster(asymdag.ClusterConfig{
		Trust:    sys,
		NumWaves: 3,
		Seed:     4,
		CoinSeed: 4,
	})
	cluster.Submit(0, "hello", "world")
	res := cluster.Run()
	if !res.OrdersAgree() {
		t.Fatal("orders diverge on counterexample system")
	}
}

func TestPublicGatherAPI(t *testing.T) {
	sys := asymdag.Counterexample()
	res := asymdag.RunGather(asymdag.GatherConfig{
		Kind:  asymdag.GatherConstantRound,
		Trust: sys,
		Seed:  1,
	})
	if len(res.Outputs) != 30 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
}

func TestPublicConsensusAPI(t *testing.T) {
	res := asymdag.RunConsensus(asymdag.RiderConfig{
		Kind:     asymdag.RiderAsymmetric,
		Trust:    asymdag.NewThreshold(4, 1),
		NumWaves: 5,
		Seed:     1,
		CoinSeed: 1,
	})
	if err := res.CheckTotalOrder(asymdag.FullSet(4)); err != nil {
		t.Error(err)
	}
}

func TestPublicQuorumAPI(t *testing.T) {
	sys, err := asymdag.NewThresholdExplicit(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Error(err)
	}
	fed, err := asymdag.NewFederated(asymdag.FederatedConfig{
		N: 10, TopTier: 7, TrustedPeers: 2, Tolerance: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fed.N() != 10 {
		t.Error("federated N wrong")
	}
	s := asymdag.NewSetOf(5, 0, 2)
	if s.Count() != 2 {
		t.Error("set ops broken through the public API")
	}
	c := asymdag.NewPRFCoin(1, 5)
	if l := c.Leader(1); l < 0 || int(l) >= 5 {
		t.Error("coin out of range")
	}
	// Building a custom system through the public constructors.
	n := 4
	fp := make([][]asymdag.Set, n)
	for i := range fp {
		fp[i] = []asymdag.Set{asymdag.NewSetOf(n, 3)}
	}
	custom, err := asymdag.Canonical(n, fp)
	if err != nil {
		t.Fatal(err)
	}
	if custom.Validate() != nil {
		t.Error("custom canonical system should validate")
	}
}

func TestPublicBinaryAgreement(t *testing.T) {
	// The primitives are message-driven state machines; full runs are
	// exercised by the internal suites (and over TCP). Here we check the
	// public constructors and pre-run state.
	nd := asymdag.NewBinaryAgreementNode(asymdag.BinaryAgreementConfig{
		Trust: asymdag.NewThreshold(4, 1),
		Coin:  asymdag.PRFCoin{},
		Input: 1,
	})
	if _, ok := nd.Decided(); ok {
		t.Fatal("decided before running")
	}
}

func TestPublicACSAndBindingConstruction(t *testing.T) {
	acsNode := asymdag.NewACSNode(asymdag.ACSConfig{
		Trust: asymdag.NewThreshold(4, 1),
		Input: "v",
	})
	if _, ok := acsNode.Output(); ok {
		t.Fatal("ACS output before running")
	}
	bind := asymdag.NewBindingGatherNode(asymdag.GatherNodeConfig{
		Trust: asymdag.NewThreshold(4, 1),
		Input: "v",
	})
	if _, ok := bind.Delivered(); ok {
		t.Fatal("binding gather delivered before running")
	}
	reg := asymdag.NewSWMRRegister(0, 0, 4, asymdag.NewThreshold(4, 1))
	if reg.Timestamp() != 0 {
		t.Fatal("fresh register timestamp should be 0")
	}
}

func TestPublicConsensusWithGCAndRevealedCoin(t *testing.T) {
	res := asymdag.RunConsensus(asymdag.RiderConfig{
		Kind:         asymdag.RiderAsymmetric,
		Trust:        asymdag.NewThreshold(4, 1),
		NumWaves:     6,
		TxPerBlock:   1,
		Seed:         2,
		CoinSeed:     2,
		RevealedCoin: true,
		GCDepth:      2,
	})
	if err := res.CheckTotalOrder(asymdag.FullSet(4)); err != nil {
		t.Error(err)
	}
	committed := 0
	for _, nr := range res.Nodes {
		if nr.DecidedWave > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no commits with revealed coin + GC through the public API")
	}
}

// TestClusterDefaultLatencyIsUniform is the regression for the documented
// "default: uniform 1..20": a nil-latency cluster must behave exactly
// like an explicit UniformLatency{1, 20} cluster — and therefore
// differently from the lockstep ConstantLatency(1) network that nil used
// to silently fall through to.
func TestClusterDefaultLatencyIsUniform(t *testing.T) {
	run := func(lat asymdag.LatencyModel) asymdag.ClusterResult {
		cluster := asymdag.NewCluster(asymdag.ClusterConfig{
			Trust:    asymdag.NewThreshold(4, 1),
			NumWaves: 4,
			Seed:     11,
			CoinSeed: 3,
			Latency:  lat,
		})
		cluster.Submit(0, "a", "b")
		return cluster.Run()
	}
	nilLat := run(nil)
	uniform := run(asymdag.UniformLatency{Min: 1, Max: 20})
	constant := run(asymdag.ConstantLatency(1))

	if nilLat.VTime != uniform.VTime || nilLat.Messages != uniform.Messages {
		t.Fatalf("nil latency (vtime %d, msgs %d) != documented uniform default (vtime %d, msgs %d)",
			nilLat.VTime, nilLat.Messages, uniform.VTime, uniform.Messages)
	}
	if nilLat.VTime == constant.VTime {
		t.Fatalf("nil latency still runs the ConstantLatency(1) schedule (vtime %d)", nilLat.VTime)
	}
}

// TestClusterMaxStepsBudget pins the Run event budget: a tiny MaxSteps
// truncates the run and flags HitLimit (so a non-quiescing schedule can
// never hang a sweep), the default budget leaves a quiescing run
// untouched, and a negative budget means unbounded.
func TestClusterMaxStepsBudget(t *testing.T) {
	mk := func(maxSteps int) asymdag.ClusterResult {
		c := asymdag.NewCluster(asymdag.ClusterConfig{
			Trust: asymdag.NewThreshold(4, 1), NumWaves: 3, Seed: 1, CoinSeed: 2,
			MaxSteps: maxSteps,
		})
		return c.Run()
	}
	if res := mk(10); !res.HitLimit {
		t.Fatal("10-step budget not reported as hit")
	}
	if res := mk(0); res.HitLimit {
		t.Fatal("default budget flagged on a quiescing run")
	}
	if res := mk(-1); res.HitLimit {
		t.Fatal("unbounded run flagged HitLimit")
	}
}

// TestClusterParallelDeliveryDeterministic pins the public-API face of
// parallel same-time delivery: identical transaction orders and network
// costs for every delivery worker count.
func TestClusterParallelDeliveryDeterministic(t *testing.T) {
	run := func(workers int) asymdag.ClusterResult {
		c := asymdag.NewCluster(asymdag.ClusterConfig{
			Trust: asymdag.NewThreshold(4, 1), NumWaves: 6, Seed: 7, CoinSeed: 8,
			DeliveryWorkers: workers,
		})
		c.Submit(0, "a", "b")
		c.Submit(2, "c")
		return c.Run()
	}
	ref := run(1)
	if !ref.OrdersAgree() {
		t.Fatal("orders diverge under parallel delivery")
	}
	for _, w := range []int{2, 5} {
		res := run(w)
		if res.Messages != ref.Messages || res.Bytes != ref.Bytes || res.VTime != ref.VTime {
			t.Fatalf("workers=%d: costs diverged: %d/%d/%d vs %d/%d/%d",
				w, res.Messages, res.Bytes, res.VTime, ref.Messages, ref.Bytes, ref.VTime)
		}
		for p := 0; p < 4; p++ {
			a, b := res.Order(asymdag.ProcessID(p)), ref.Order(asymdag.ProcessID(p))
			if len(a) != len(b) {
				t.Fatalf("workers=%d: process %d order length %d vs %d", w, p, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: process %d order diverged at %d: %q vs %q", w, p, i, a[i], b[i])
				}
			}
		}
	}
}
