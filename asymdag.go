package asymdag

import (
	"repro/internal/abba"
	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/register"
	"repro/internal/rider"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported foundation types. The library's public surface is defined
// here; internal packages hold the implementations.

type (
	// ProcessID identifies a process (zero-based).
	ProcessID = types.ProcessID
	// Set is a process-set bitset.
	Set = types.Set

	// System is an explicit asymmetric Byzantine quorum system.
	System = quorum.System
	// Threshold is the classic n-of-which-f-may-fail assumption.
	Threshold = quorum.Threshold
	// Assumption is the trust interface protocols consume.
	Assumption = quorum.Assumption
	// FederatedConfig parameterizes the Stellar-flavoured generator.
	FederatedConfig = quorum.FederatedConfig
	// UNLConfig parameterizes the Ripple-flavoured generator.
	UNLConfig = quorum.UNLConfig

	// CoinSource elects wave leaders.
	CoinSource = coin.Source

	// GatherKind selects a gather protocol.
	GatherKind = gather.Kind
	// GatherConfig configures a gather execution.
	GatherConfig = gather.RunConfig
	// GatherResult is a gather execution's outcome.
	GatherResult = gather.RunResult
	// Pairs is a gather (process, value) set.
	Pairs = gather.Pairs

	// RiderKind selects a consensus protocol.
	RiderKind = harness.RiderKind
	// RiderConfig configures a consensus execution.
	RiderConfig = harness.RiderConfig
	// RiderResult is a consensus execution's outcome.
	RiderResult = harness.RiderResult

	// LatencyModel controls simulated message delays.
	LatencyModel = sim.LatencyModel
	// UniformLatency delays uniformly in [Min, Max].
	UniformLatency = sim.UniformLatency
	// ConstantLatency delays every message equally.
	ConstantLatency = sim.ConstantLatency
	// FavoredLinksLatency is the adversarial schedule of Appendix A.
	FavoredLinksLatency = sim.FavoredLinksLatency
)

// Protocol selector constants.
const (
	GatherThreeRound    = gather.KindThreeRound
	GatherConstantRound = gather.KindConstantRound
	RiderSymmetric      = harness.Symmetric
	RiderAsymmetric     = harness.Asymmetric

	// GatherUseReliable disseminates gather inputs over asymmetric
	// reliable broadcast (the protocol as written in the paper).
	GatherUseReliable = gather.UseReliable
	// GatherUsePlain uses best-effort broadcast — valid with correct
	// senders; the Appendix A adversarial executions use it so the
	// schedule acts directly on the protocol rounds.
	GatherUsePlain = gather.UsePlain
)

// NewSet returns an empty set over a universe of n processes.
func NewSet(n int) Set { return types.NewSet(n) }

// NewSetOf returns a set containing the given members.
func NewSetOf(n int, members ...ProcessID) Set { return types.NewSetOf(n, members...) }

// FullSet returns the set of all n processes.
func FullSet(n int) Set { return types.FullSet(n) }

// NewThreshold returns the threshold assumption (panics unless n > 3f).
func NewThreshold(n, f int) Threshold { return quorum.NewThreshold(n, f) }

// NewThresholdExplicit materializes the threshold system explicitly (for
// small n).
func NewThresholdExplicit(n, f int) (*System, error) { return quorum.NewThresholdExplicit(n, f) }

// NewSystem builds an explicit asymmetric system from per-process
// fail-prone and quorum collections.
func NewSystem(n int, failProne, quorums [][]Set) (*System, error) {
	return quorum.New(n, failProne, quorums)
}

// NewSymmetric builds a symmetric system from a shared fail-prone
// collection with canonical quorums.
func NewSymmetric(n int, failProne []Set) (*System, error) {
	return quorum.NewSymmetric(n, failProne)
}

// Canonical derives canonical quorums (complements of fail-prone sets).
func Canonical(n int, failProne [][]Set) (*System, error) { return quorum.Canonical(n, failProne) }

// NewFederated generates a Stellar-flavoured tiered system.
func NewFederated(cfg FederatedConfig) (*System, error) { return quorum.NewFederated(cfg) }

// NewUNL generates a Ripple-flavoured UNL system.
func NewUNL(cfg UNLConfig) (*System, error) { return quorum.NewUNL(cfg) }

// Counterexample returns the paper's 30-process Figure 1 system.
func Counterexample() *System { return quorum.Counterexample() }

// NewPRFCoin returns the seeded common coin shared by a run's nodes.
func NewPRFCoin(seed int64, n int) CoinSource { return coin.NewPRF(seed, n) }

// FaultBehavior is a stand-in state machine for a faulty process, usable
// in RiderConfig.Faulty and GatherConfig.Faulty.
type FaultBehavior = sim.Node

// Mute returns the simplest Byzantine behaviour: a process that never
// sends a message (indistinguishable from an initial crash).
func Mute() FaultBehavior { return sim.MuteNode{} }

// CrashAt returns a fail-stop behaviour wrapping an inner node that stops
// participating at the given virtual time.
func CrashAt(inner FaultBehavior, at int64) FaultBehavior {
	return &sim.CrashNode{Inner: inner, CrashAt: sim.VirtualTime(at)}
}

// RunGather executes one gather instance across a simulated cluster.
func RunGather(cfg GatherConfig) GatherResult { return gather.RunCluster(cfg) }

// RunConsensus executes one consensus instance across a simulated cluster.
func RunConsensus(cfg RiderConfig) RiderResult { return harness.RunRider(cfg) }

// Additional asymmetric primitives. ---------------------------------------

type (
	// BinaryAgreementNode runs asymmetric randomized binary consensus.
	BinaryAgreementNode = abba.Node
	// BinaryAgreementConfig configures a BinaryAgreementNode.
	BinaryAgreementConfig = abba.Config

	// ACSNode runs asymmetric Agreement on a Core Set (gather + n binary
	// agreements); all guild members output an identical set.
	ACSNode = acs.Node
	// ACSConfig configures an ACSNode.
	ACSConfig = acs.Config

	// SWMRRegister is the asymmetric single-writer multi-reader atomic
	// register emulation.
	SWMRRegister = register.Register

	// BindingGatherNode is the gather variant whose common core is fixed
	// once the first correct process delivers (one extra round).
	BindingGatherNode = gather.BindingNode

	// PRFCoin is the concrete seeded coin (exposes Bit for binary
	// agreement).
	PRFCoin = coin.PRF
)

// NewBinaryAgreementNode creates a binary-agreement process.
func NewBinaryAgreementNode(cfg BinaryAgreementConfig) *BinaryAgreementNode {
	return abba.NewNode(cfg)
}

// NewACSNode creates an agreement-on-a-core-set process.
func NewACSNode(cfg ACSConfig) *ACSNode { return acs.NewNode(cfg) }

// NewSWMRRegister creates a register endpoint; all processes must agree on
// the writer.
func NewSWMRRegister(self, writer ProcessID, n int, trust Assumption) *SWMRRegister {
	return register.New(self, writer, n, trust)
}

// NewBindingGatherNode creates a binding-gather process.
func NewBindingGatherNode(cfg GatherNodeConfig) *BindingGatherNode {
	return gather.NewBindingNode(gather.Config{Trust: cfg.Trust, Input: cfg.Input, Mode: cfg.Mode})
}

// GatherNodeConfig configures a single gather node (as opposed to
// GatherConfig, which configures a whole simulated cluster run).
type GatherNodeConfig = gather.Config

// Declarative adversarial scenarios. --------------------------------------

type (
	// Scenario is a declarative adversarial setup: timed link-fault rules
	// plus per-node fault wrappers, with the Definition 4.1 properties the
	// run is expected to keep.
	Scenario = scenario.Scenario
	// ScenarioRule is one timed link-fault rule (drop, duplicate, delay,
	// hold-until, redeliver) over a link selector and a time window.
	ScenarioRule = scenario.Rule
	// ScenarioWindow is a half-open virtual-time activity window.
	ScenarioWindow = scenario.Window
	// ScenarioJitter draws a delay uniformly from [Min, Max].
	ScenarioJitter = scenario.Jitter
	// ScenarioLinks selects the directed links a rule applies to.
	ScenarioLinks = scenario.Links
	// ScenarioProperty names a Definition 4.1 property a scenario declares.
	ScenarioProperty = scenario.Property
	// ScenarioNodeFault attaches a fault wrapper to one process.
	ScenarioNodeFault = scenario.NodeFault
	// ScenarioDefinition is a named, parameterized scenario builder.
	ScenarioDefinition = scenario.Definition
	// FaultPlane injects message faults at the simulator's deterministic
	// send- and deliver-commit points.
	FaultPlane = sim.FaultPlane
	// ScenarioSweepConfig parameterizes a scenario × seed sweep.
	ScenarioSweepConfig = harness.ScenarioSweepConfig
	// ScenarioSweepStats aggregates one scenario's sweep.
	ScenarioSweepStats = harness.ScenarioSweepStats
	// ScenarioFailure identifies the first failing (scenario, seed) pair.
	ScenarioFailure = harness.ScenarioFailure
)

// Scenario property constants (paper Definition 4.1).
const (
	ScenarioTotalOrder = scenario.TotalOrder
	ScenarioAgreement  = scenario.Agreement
	ScenarioIntegrity  = scenario.Integrity
	ScenarioValidity   = scenario.Validity
	ScenarioLiveness   = scenario.Liveness
)

// SafetyScenarioProperties returns the safety subset of Definition 4.1
// (total order, agreement, integrity) — what information-destroying faults
// must still preserve.
func SafetyScenarioProperties() []ScenarioProperty { return scenario.SafetyProperties() }

// AllScenarioProperties returns every Definition 4.1 property, for
// scenarios the protocol is expected to fully ride out.
func AllScenarioProperties() []ScenarioProperty { return scenario.AllProperties() }

// BuiltinScenarios returns the registry of named adversarial scenarios,
// each bundled with the properties it is expected to keep.
func BuiltinScenarios() []ScenarioDefinition { return scenario.Builtins() }

// FindScenario looks a built-in scenario up by name.
func FindScenario(name string) (ScenarioDefinition, bool) { return scenario.Find(name) }

// ScenarioNames lists the built-in scenario names in registry order.
func ScenarioNames() []string { return scenario.Names() }

// LinksFrom selects links originating in s.
func LinksFrom(s Set) ScenarioLinks { return scenario.FromSet(s) }

// LinksTo selects links terminating in s.
func LinksTo(s Set) ScenarioLinks { return scenario.ToSet(s) }

// LinksBetween selects links crossing between a and b (both directions).
func LinksBetween(a, b Set) ScenarioLinks { return scenario.Between(a, b) }

// ChurnFault crashes p at crashAt and recovers it at recoverAt; with
// buffer, deliveries during the outage are replayed on recovery (the
// process counts as correct), otherwise they are lost (faulty).
func ChurnFault(p ProcessID, crashAt, recoverAt int64, buffer bool) ScenarioNodeFault {
	return scenario.Churn(p, sim.VirtualTime(crashAt), sim.VirtualTime(recoverAt), buffer)
}

// SelectiveFault makes p send protocol messages only to allow.
func SelectiveFault(p ProcessID, allow Set) ScenarioNodeFault { return scenario.Selective(p, allow) }

// StaleReplayFault makes p re-send an old message alongside every
// every-th fresh one.
func StaleReplayFault(p ProcessID, every int) ScenarioNodeFault {
	return scenario.StaleReplay(p, every)
}

// EquivocateFault makes p show groupA its genuine stream while the rest
// receive p's previous broadcast instead.
func EquivocateFault(p ProcessID, groupA Set) ScenarioNodeFault {
	return scenario.Equivocate(p, groupA)
}

// SweepScenario runs one scenario across the seeds and aggregates stats;
// per-run properties are those the scenario declares.
func SweepScenario(def ScenarioDefinition, seeds []int64, cfg ScenarioSweepConfig) ScenarioSweepStats {
	return harness.SweepScenario(def, seeds, cfg)
}

// SweepScenarios sweeps every definition and reports the first failing
// (scenario, seed) pair, if any.
func SweepScenarios(defs []ScenarioDefinition, seeds []int64, cfg ScenarioSweepConfig) ([]ScenarioSweepStats, *ScenarioFailure) {
	return harness.SweepScenarios(defs, seeds, cfg)
}

// CheckScenarioProperties verifies one run against the scenario's declared
// properties (guild-scoped, per the paper).
func CheckScenarioProperties(def ScenarioDefinition, res RiderResult) error {
	return harness.CheckScenarioProperties(def, res)
}

// ScenarioRun builds the rider configuration a scenario sweep uses for one
// seed and executes it — the single-run counterpart of SweepScenario, for
// replaying a failing seed.
func ScenarioRun(def ScenarioDefinition, cfg ScenarioSweepConfig, seed int64) RiderResult {
	return harness.RunRider(harness.ScenarioRiderConfig(def, cfg, seed))
}

// SeedRange returns seeds start, start+1, ..., start+count-1 for sweeps.
func SeedRange(start int64, count int) []int64 { return sim.SeedRange(start, count) }

// Long-lived replicated service mode. -------------------------------------

type (
	// ServiceConfig configures an indefinitely-running replicated service:
	// pipelined client batching, mandatory DAG garbage collection, and
	// periodic snapshot/compaction (see internal/service).
	ServiceConfig = harness.ServiceConfig
	// ServiceResult is a service run's outcome (per-replica reports plus
	// simulator metrics).
	ServiceResult = harness.ServiceResult
	// ServiceReport summarizes one replica: decided wave, applied and
	// compacted transactions, admission-control counters, peak live state,
	// snapshots, and commit-latency summary.
	ServiceReport = harness.ServiceReport
	// ServiceSnapshot is one snapshot/compaction point: the machine state
	// after the commit that set the covered decided wave.
	ServiceSnapshot = harness.ServiceSnapshot
	// ServiceStats aggregates sustained throughput, commit rate, and
	// pooled commit latency across a run's replicas.
	ServiceStats = harness.ServiceStats
	// ServiceLatency summarizes commit latency in virtual-time units.
	ServiceLatency = harness.ServiceLatency

	// StateMachine is the deterministic application a service replicates.
	StateMachine = service.StateMachine
	// KVMachine is the built-in replicated key-value StateMachine.
	KVMachine = service.KV
)

// NewKVMachine returns an empty key-value state machine.
func NewKVMachine() *KVMachine { return service.NewKV() }

// RunService executes one long-lived service cluster until the configured
// stop condition and collects per-replica reports.
func RunService(cfg ServiceConfig) ServiceResult { return harness.RunService(cfg) }

// SummarizeService computes run-level sustained-throughput and
// commit-latency statistics.
func SummarizeService(res ServiceResult) ServiceStats { return harness.SummarizeService(res) }

// CheckServiceSnapshots verifies byte-identical replica states at every
// shared snapshot wave, returning the number of comparisons made (0 =
// vacuous: no wave was shared).
func CheckServiceSnapshots(res ServiceResult) (int, error) {
	return harness.CheckServiceSnapshots(res)
}

// ServiceScenarioConfig installs a named adversarial scenario (fault plane
// and node wrappers) for the given seed into a service configuration.
func ServiceScenarioConfig(def ScenarioDefinition, cfg ServiceConfig, seed int64) ServiceConfig {
	return harness.ServiceScenarioConfig(def, cfg, seed)
}

// Real-network deployment (TCP). -----------------------------------------

type (
	// ConsensusNode is one process of the asymmetric DAG consensus,
	// usable both under the simulator and over TCP.
	ConsensusNode = core.Node
	// ConsensusConfig configures a ConsensusNode.
	ConsensusConfig = core.Config
	// Workload supplies the transactions a node packs into vertices.
	Workload = rider.Workload
	// SyntheticWorkload generates labeled transactions for benchmarks.
	SyntheticWorkload = rider.SyntheticWorkload
	// QueueWorkload drains explicitly submitted transactions.
	QueueWorkload = rider.QueueWorkload

	// TCPHost runs one protocol node over real TCP connections.
	TCPHost = transport.Host
	// TCPHostConfig configures a single TCPHost (listen address, bounded
	// outbox limit, frame compression).
	TCPHostConfig = transport.HostConfig
	// TCPCluster is a fully wired loopback mesh of TCPHosts.
	TCPCluster = transport.LocalCluster
	// TCPClusterConfig configures a TCPCluster (seed, per-peer outbox
	// bound, flate compression of batch frames).
	TCPClusterConfig = transport.LocalClusterConfig
	// TCPStats aggregates a host's (or cluster's) wire traffic counters:
	// frames, messages and bytes sent, write/encode errors, re-queued
	// envelopes, and received totals.
	TCPStats = transport.HostStats
	// TCPPeerStats is the per-peer-link slice of TCPStats.
	TCPPeerStats = transport.PeerStats
)

// NewConsensusNode creates an asymmetric-consensus process.
func NewConsensusNode(cfg ConsensusConfig) *ConsensusNode { return core.NewNode(cfg) }

// NewTCPCluster builds (without starting) a loopback TCP mesh running the
// given protocol nodes; see examples/tcpnet.
func NewTCPCluster(nodes []FaultBehavior, seed int64) (*TCPCluster, error) {
	return transport.NewLocalCluster(nodes, seed)
}

// NewTCPClusterConfig is NewTCPCluster with the transport knobs exposed:
// per-peer outbox bound (backpressure) and flate frame compression.
func NewTCPClusterConfig(nodes []FaultBehavior, cfg TCPClusterConfig) (*TCPCluster, error) {
	return transport.NewLocalClusterConfig(nodes, cfg)
}

// NewTCPHost creates a single TCP host for distributed deployments: wire
// peers with Connect, then Start.
func NewTCPHost(self ProcessID, n int, node FaultBehavior, addr string, seed int64) (*TCPHost, error) {
	return transport.NewHost(self, n, node, addr, seed)
}

// NewTCPHostConfig is NewTCPHost with the transport knobs exposed.
func NewTCPHostConfig(cfg TCPHostConfig) (*TCPHost, error) {
	return transport.NewHostConfig(cfg)
}
