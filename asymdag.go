package asymdag

import (
	"repro/internal/abba"
	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/register"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported foundation types. The library's public surface is defined
// here; internal packages hold the implementations.

type (
	// ProcessID identifies a process (zero-based).
	ProcessID = types.ProcessID
	// Set is a process-set bitset.
	Set = types.Set

	// System is an explicit asymmetric Byzantine quorum system.
	System = quorum.System
	// Threshold is the classic n-of-which-f-may-fail assumption.
	Threshold = quorum.Threshold
	// Assumption is the trust interface protocols consume.
	Assumption = quorum.Assumption
	// FederatedConfig parameterizes the Stellar-flavoured generator.
	FederatedConfig = quorum.FederatedConfig
	// UNLConfig parameterizes the Ripple-flavoured generator.
	UNLConfig = quorum.UNLConfig

	// CoinSource elects wave leaders.
	CoinSource = coin.Source

	// GatherKind selects a gather protocol.
	GatherKind = gather.Kind
	// GatherConfig configures a gather execution.
	GatherConfig = gather.RunConfig
	// GatherResult is a gather execution's outcome.
	GatherResult = gather.RunResult
	// Pairs is a gather (process, value) set.
	Pairs = gather.Pairs

	// RiderKind selects a consensus protocol.
	RiderKind = harness.RiderKind
	// RiderConfig configures a consensus execution.
	RiderConfig = harness.RiderConfig
	// RiderResult is a consensus execution's outcome.
	RiderResult = harness.RiderResult

	// LatencyModel controls simulated message delays.
	LatencyModel = sim.LatencyModel
	// UniformLatency delays uniformly in [Min, Max].
	UniformLatency = sim.UniformLatency
	// ConstantLatency delays every message equally.
	ConstantLatency = sim.ConstantLatency
	// FavoredLinksLatency is the adversarial schedule of Appendix A.
	FavoredLinksLatency = sim.FavoredLinksLatency
)

// Protocol selector constants.
const (
	GatherThreeRound    = gather.KindThreeRound
	GatherConstantRound = gather.KindConstantRound
	RiderSymmetric      = harness.Symmetric
	RiderAsymmetric     = harness.Asymmetric

	// GatherUseReliable disseminates gather inputs over asymmetric
	// reliable broadcast (the protocol as written in the paper).
	GatherUseReliable = gather.UseReliable
	// GatherUsePlain uses best-effort broadcast — valid with correct
	// senders; the Appendix A adversarial executions use it so the
	// schedule acts directly on the protocol rounds.
	GatherUsePlain = gather.UsePlain
)

// NewSet returns an empty set over a universe of n processes.
func NewSet(n int) Set { return types.NewSet(n) }

// NewSetOf returns a set containing the given members.
func NewSetOf(n int, members ...ProcessID) Set { return types.NewSetOf(n, members...) }

// FullSet returns the set of all n processes.
func FullSet(n int) Set { return types.FullSet(n) }

// NewThreshold returns the threshold assumption (panics unless n > 3f).
func NewThreshold(n, f int) Threshold { return quorum.NewThreshold(n, f) }

// NewThresholdExplicit materializes the threshold system explicitly (for
// small n).
func NewThresholdExplicit(n, f int) (*System, error) { return quorum.NewThresholdExplicit(n, f) }

// NewSystem builds an explicit asymmetric system from per-process
// fail-prone and quorum collections.
func NewSystem(n int, failProne, quorums [][]Set) (*System, error) {
	return quorum.New(n, failProne, quorums)
}

// NewSymmetric builds a symmetric system from a shared fail-prone
// collection with canonical quorums.
func NewSymmetric(n int, failProne []Set) (*System, error) {
	return quorum.NewSymmetric(n, failProne)
}

// Canonical derives canonical quorums (complements of fail-prone sets).
func Canonical(n int, failProne [][]Set) (*System, error) { return quorum.Canonical(n, failProne) }

// NewFederated generates a Stellar-flavoured tiered system.
func NewFederated(cfg FederatedConfig) (*System, error) { return quorum.NewFederated(cfg) }

// NewUNL generates a Ripple-flavoured UNL system.
func NewUNL(cfg UNLConfig) (*System, error) { return quorum.NewUNL(cfg) }

// Counterexample returns the paper's 30-process Figure 1 system.
func Counterexample() *System { return quorum.Counterexample() }

// NewPRFCoin returns the seeded common coin shared by a run's nodes.
func NewPRFCoin(seed int64, n int) CoinSource { return coin.NewPRF(seed, n) }

// FaultBehavior is a stand-in state machine for a faulty process, usable
// in RiderConfig.Faulty and GatherConfig.Faulty.
type FaultBehavior = sim.Node

// Mute returns the simplest Byzantine behaviour: a process that never
// sends a message (indistinguishable from an initial crash).
func Mute() FaultBehavior { return sim.MuteNode{} }

// CrashAt returns a fail-stop behaviour wrapping an inner node that stops
// participating at the given virtual time.
func CrashAt(inner FaultBehavior, at int64) FaultBehavior {
	return &sim.CrashNode{Inner: inner, CrashAt: sim.VirtualTime(at)}
}

// RunGather executes one gather instance across a simulated cluster.
func RunGather(cfg GatherConfig) GatherResult { return gather.RunCluster(cfg) }

// RunConsensus executes one consensus instance across a simulated cluster.
func RunConsensus(cfg RiderConfig) RiderResult { return harness.RunRider(cfg) }

// Additional asymmetric primitives. ---------------------------------------

type (
	// BinaryAgreementNode runs asymmetric randomized binary consensus.
	BinaryAgreementNode = abba.Node
	// BinaryAgreementConfig configures a BinaryAgreementNode.
	BinaryAgreementConfig = abba.Config

	// ACSNode runs asymmetric Agreement on a Core Set (gather + n binary
	// agreements); all guild members output an identical set.
	ACSNode = acs.Node
	// ACSConfig configures an ACSNode.
	ACSConfig = acs.Config

	// SWMRRegister is the asymmetric single-writer multi-reader atomic
	// register emulation.
	SWMRRegister = register.Register

	// BindingGatherNode is the gather variant whose common core is fixed
	// once the first correct process delivers (one extra round).
	BindingGatherNode = gather.BindingNode

	// PRFCoin is the concrete seeded coin (exposes Bit for binary
	// agreement).
	PRFCoin = coin.PRF
)

// NewBinaryAgreementNode creates a binary-agreement process.
func NewBinaryAgreementNode(cfg BinaryAgreementConfig) *BinaryAgreementNode {
	return abba.NewNode(cfg)
}

// NewACSNode creates an agreement-on-a-core-set process.
func NewACSNode(cfg ACSConfig) *ACSNode { return acs.NewNode(cfg) }

// NewSWMRRegister creates a register endpoint; all processes must agree on
// the writer.
func NewSWMRRegister(self, writer ProcessID, n int, trust Assumption) *SWMRRegister {
	return register.New(self, writer, n, trust)
}

// NewBindingGatherNode creates a binding-gather process.
func NewBindingGatherNode(cfg GatherNodeConfig) *BindingGatherNode {
	return gather.NewBindingNode(gather.Config{Trust: cfg.Trust, Input: cfg.Input, Mode: cfg.Mode})
}

// GatherNodeConfig configures a single gather node (as opposed to
// GatherConfig, which configures a whole simulated cluster run).
type GatherNodeConfig = gather.Config

// Real-network deployment (TCP). -----------------------------------------

type (
	// ConsensusNode is one process of the asymmetric DAG consensus,
	// usable both under the simulator and over TCP.
	ConsensusNode = core.Node
	// ConsensusConfig configures a ConsensusNode.
	ConsensusConfig = core.Config
	// Workload supplies the transactions a node packs into vertices.
	Workload = rider.Workload
	// SyntheticWorkload generates labeled transactions for benchmarks.
	SyntheticWorkload = rider.SyntheticWorkload
	// QueueWorkload drains explicitly submitted transactions.
	QueueWorkload = rider.QueueWorkload

	// TCPHost runs one protocol node over real TCP connections.
	TCPHost = transport.Host
	// TCPCluster is a fully wired loopback mesh of TCPHosts.
	TCPCluster = transport.LocalCluster
)

// NewConsensusNode creates an asymmetric-consensus process.
func NewConsensusNode(cfg ConsensusConfig) *ConsensusNode { return core.NewNode(cfg) }

// NewTCPCluster builds (without starting) a loopback TCP mesh running the
// given protocol nodes; see examples/tcpnet.
func NewTCPCluster(nodes []FaultBehavior, seed int64) (*TCPCluster, error) {
	return transport.NewLocalCluster(nodes, seed)
}

// NewTCPHost creates a single TCP host for distributed deployments: wire
// peers with Connect, then Start.
func NewTCPHost(self ProcessID, n int, node FaultBehavior, addr string, seed int64) (*TCPHost, error) {
	transport.RegisterAllWire()
	return transport.NewHost(self, n, node, addr, seed)
}
