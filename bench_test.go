// Benchmarks regenerating every figure and quantitative claim of the paper
// (one benchmark per experiment in DESIGN.md's index, plus micro-benchmarks
// of the hot substrate operations). Run:
//
//	go test -bench=. -benchmem
//
// The Benchmark*/commit and */tx metrics are the paper-shaped results:
// waves-per-commit against the Lemma 4.4 bound, message and byte costs of
// the asymmetric control flow, and symmetric-vs-asymmetric throughput.
package asymdag_test

import (
	"runtime"
	"testing"

	asymdag "repro"
	"repro/internal/abba"
	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/gather"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/register"
	"repro/internal/sim"
	"repro/internal/types"
)

// E1 — Figure 1: constructing and validating the counterexample system.
func BenchmarkFig1CounterexampleConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := quorum.Counterexample()
		if !sys.SatisfiesB3() || sys.Validate() != nil {
			b.Fatal("counterexample system broken")
		}
	}
}

// E2/E3/E4 — Figures 2–4: the abstract round-merge execution of Listing 1.
func benchRoundSets(b *testing.B, rounds int) {
	sys := quorum.Counterexample()
	choice := gather.CanonicalChoice(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := gather.RoundSets(sys.N(), choice, rounds)
		if len(sets) != 30 {
			b.Fatal("wrong size")
		}
	}
}

func BenchmarkFig2SSets(b *testing.B) { benchRoundSets(b, 1) }
func BenchmarkFig3TSets(b *testing.B) { benchRoundSets(b, 2) }

func BenchmarkFig4Listing1Verification(b *testing.B) {
	sys := quorum.Counterexample()
	choice := gather.CanonicalChoice(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := gather.RoundSets(sys.N(), choice, 3)
		if !gather.CommonCoreCandidates(sys.N(), choice, u).IsEmpty() {
			b.Fatal("Lemma 3.2 violated")
		}
	}
}

// E4 (message level) — Algorithm 2 on the adversarial schedule.
func adversarialLatency(sys *quorum.System) sim.LatencyModel {
	fav := make([]types.Set, sys.N())
	for i := range fav {
		fav[i] = sys.Quorums(types.ProcessID(i))[0]
	}
	return sim.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 100000}
}

func BenchmarkGatherAlgorithm2Adversarial(b *testing.B) {
	sys := quorum.Counterexample()
	lat := adversarialLatency(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gather.RunCluster(gather.RunConfig{
			Kind: gather.KindThreeRound, Trust: sys, Mode: gather.UsePlain, Latency: lat, Seed: 1,
		})
		if len(res.Outputs) != 30 {
			b.Fatal("missing deliveries")
		}
	}
}

// E6 — Algorithm 3 on the same schedule (the paper's fix).
func BenchmarkGatherAlgorithm3Adversarial(b *testing.B) {
	sys := quorum.Counterexample()
	lat := adversarialLatency(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gather.RunCluster(gather.RunConfig{
			Kind: gather.KindConstantRound, Trust: sys, Mode: gather.UsePlain, Latency: lat, Seed: 1,
		})
		core := gather.AnalyzeCommonCore(30, res.SSnapshots, res.Outputs, types.FullSet(30))
		if core.IsEmpty() {
			b.Fatal("no common core")
		}
	}
}

// E6 — symmetric baseline gather (Algorithm 1) with full reliable
// broadcast.
func BenchmarkGatherAlgorithm1Threshold(b *testing.B) {
	trust := quorum.NewThreshold(7, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gather.RunCluster(gather.RunConfig{
			Kind: gather.KindThreeRound, Trust: trust, Mode: gather.UseReliable,
			Latency: sim.UniformLatency{Min: 1, Max: 20}, Seed: int64(i),
		})
		if len(res.Outputs) != 7 {
			b.Fatal("missing deliveries")
		}
	}
}

// E5 — the <16-process search.
func BenchmarkSmallSystemCommonCoreSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N: 10, NumSets: 2, MaxFault: 2, Seed: int64(i),
		})
		if err != nil {
			continue
		}
		choice := gather.CanonicalChoice(sys)
		u := gather.RoundSets(10, choice, 3)
		if gather.CommonCoreCandidates(10, choice, u).IsEmpty() {
			b.Fatal("small-system violation")
		}
	}
}

// E7 — Lemma 4.4: waves per commit, reported as a custom metric next to
// the |P|/c(Q) bound.
func benchCommitWaves(b *testing.B, trust quorum.Assumption, waves int) {
	totalWaves, totalCommits := 0, 0
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: harness.Asymmetric, Trust: trust, NumWaves: waves,
			Seed: int64(i), CoinSeed: int64(i)*31 + 1,
		})
		for _, nr := range res.Nodes {
			totalWaves += waves
			totalCommits += len(nr.Commits)
		}
	}
	if totalCommits > 0 {
		b.ReportMetric(float64(totalWaves)/float64(totalCommits), "waves/commit")
	}
	if qs, ok := trust.(quorum.QuorumSizer); ok {
		b.ReportMetric(float64(trust.N())/float64(qs.SmallestQuorumSize()), "bound")
	}
}

func BenchmarkCommitWavesThreshold4(b *testing.B) { benchCommitWaves(b, quorum.NewThreshold(4, 1), 10) }
func BenchmarkCommitWavesThreshold7(b *testing.B) { benchCommitWaves(b, quorum.NewThreshold(7, 2), 8) }
func BenchmarkCommitWavesThreshold10(b *testing.B) {
	benchCommitWaves(b, quorum.NewThreshold(10, 3), 6)
}

func BenchmarkCommitWavesCounterexample30(b *testing.B) {
	benchCommitWaves(b, quorum.Counterexample(), 3)
}

func BenchmarkCommitWavesFederated10(b *testing.B) {
	fed, err := quorum.NewFederated(quorum.FederatedConfig{
		N: 10, TopTier: 7, TrustedPeers: 2, Tolerance: 2, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchCommitWaves(b, fed, 8)
}

// E8 — symmetric vs asymmetric DAG-Rider: throughput and network cost.
func benchRider(b *testing.B, kind harness.RiderKind, n, f int) {
	trust := quorum.NewThreshold(n, f)
	var txs, msgs, bytes int
	var vtime int64
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: kind, Trust: trust, NumWaves: 8, TxPerBlock: 4,
			Seed: int64(i), CoinSeed: int64(i) * 13,
		})
		for _, nr := range res.Nodes {
			txs += len(nr.Blocks)
			break // one representative node
		}
		msgs += res.Metrics.MessagesSent
		bytes += res.Metrics.BytesSent
		vtime += int64(res.EndTime)
	}
	b.ReportMetric(float64(txs)/float64(b.N), "tx/run")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/run")
	b.ReportMetric(float64(bytes)/float64(b.N), "bytes/run")
	b.ReportMetric(float64(vtime)/float64(b.N), "vtime/run")
}

func BenchmarkRiderSymmetric4(b *testing.B)  { benchRider(b, harness.Symmetric, 4, 1) }
func BenchmarkRiderAsymmetric4(b *testing.B) { benchRider(b, harness.Asymmetric, 4, 1) }
func BenchmarkRiderSymmetric7(b *testing.B)  { benchRider(b, harness.Symmetric, 7, 2) }
func BenchmarkRiderAsymmetric7(b *testing.B) { benchRider(b, harness.Asymmetric, 7, 2) }

// E9 — consensus under faults.
func BenchmarkRiderAsymmetricWithCrashes(b *testing.B) {
	trust := quorum.NewThreshold(7, 2)
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: harness.Asymmetric, Trust: trust, NumWaves: 6, TxPerBlock: 2,
			Seed: int64(i), CoinSeed: int64(i),
			Faulty: map[types.ProcessID]sim.Node{5: sim.MuteNode{}, 6: sim.MuteNode{}},
		})
		correct := types.NewSetOf(7, 0, 1, 2, 3, 4)
		if err := res.CheckTotalOrder(correct); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 / quickstart — the public API end to end.
func BenchmarkClusterQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster := asymdag.NewCluster(asymdag.ClusterConfig{
			Trust: asymdag.NewThreshold(4, 1), NumWaves: 6, Seed: int64(i), CoinSeed: 3,
		})
		cluster.Submit(0, "a", "b", "c")
		res := cluster.Run()
		if !res.OrdersAgree() {
			b.Fatal("orders diverge")
		}
	}
}

// Sweep engine: multi-seed fan-out over the worker pool. The Serial/
// Parallel pair measures the speedup of sharding independent seeds across
// cores (identical results by the sweep determinism contract).

func benchSweepRider(b *testing.B, workers int) {
	trust := quorum.NewThreshold(4, 1)
	sw := harness.Sweeper{Workers: workers}
	seeds := sim.SeedRange(0, 16)
	correct := types.FullSet(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := sw.SweepRider(seeds, func(seed int64) harness.RiderConfig {
			return harness.RiderConfig{
				Kind: harness.Asymmetric, Trust: trust, NumWaves: 6, TxPerBlock: 2,
				Seed: seed, CoinSeed: seed*13 + 1,
			}
		}, func(res harness.RiderResult) error { return res.CheckTotalOrder(correct) })
		if stats.Failures > 0 {
			b.Fatal(stats.First)
		}
	}
	b.ReportMetric(float64(len(seeds))*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

func BenchmarkSweepRiderSerial(b *testing.B)   { benchSweepRider(b, 1) }
func BenchmarkSweepRiderParallel(b *testing.B) { benchSweepRider(b, 0) }

func benchSweepGather(b *testing.B, workers int) {
	sys := quorum.Counterexample()
	sw := harness.Sweeper{Workers: workers}
	seeds := sim.SeedRange(0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := sw.SweepGather(seeds, func(seed int64) gather.RunConfig {
			return gather.RunConfig{
				Kind: gather.KindConstantRound, Trust: sys, Mode: gather.UsePlain,
				Latency: sim.UniformLatency{Min: 1, Max: 20}, Seed: seed,
			}
		}, nil)
		if stats.CommonCores != stats.Runs {
			b.Fatalf("common core missing in %d/%d runs", stats.Runs-stats.CommonCores, stats.Runs)
		}
	}
	b.ReportMetric(float64(len(seeds))*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

func BenchmarkSweepGatherSerial(b *testing.B)   { benchSweepGather(b, 1) }
func BenchmarkSweepGatherParallel(b *testing.B) { benchSweepGather(b, 0) }

// ABBA sweep: agreement checked on every seed.
func BenchmarkSweepABBA(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	sw := harness.Sweeper{}
	seeds := sim.SeedRange(0, 16)
	var last harness.ABBASweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = sw.SweepABBA(seeds, func(seed int64) harness.ABBAConfig {
			return harness.ABBAConfig{Trust: trust, Seed: seed, CoinSeed: seed + 7}
		}, nil)
		if last.Failures > 0 {
			b.Fatal(last.First)
		}
	}
	if last.Decided > 0 {
		b.ReportMetric(float64(last.TotalRounds)/float64(last.Decided), "rounds/decision")
	}
}

// Large-n single-run scaling: the sharded event queue plus parallel
// same-time delivery. One n=100 execution is far too slow to run to
// quiescence inside a benchmark iteration (several million deliveries),
// so each op delivers a fixed 300k-event budget of the run — a
// well-defined unit of work that makes serial and parallel directly
// comparable. The Serial/Parallel pair is the scaling claim: on a
// multi-core host parallel delivery must beat serial (on a single-core
// host it only pays the buffering overhead); `make benchcmp` guards the
// serial numbers so the lane-queue refactor cannot silently regress the
// default path.

const largeNEvents = 300_000

func benchLargeNRider(b *testing.B, workers int) {
	trust := quorum.NewThreshold(100, 33)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: harness.Asymmetric, Trust: trust, NumWaves: 2, TxPerBlock: 1,
			Seed: int64(i), CoinSeed: int64(i)*13 + 1,
			Latency:   sim.UniformLatency{Min: 1, Max: 5},
			MaxEvents: largeNEvents, DeliveryWorkers: workers,
		})
		if len(res.Nodes) != 100 {
			b.Fatal("large-n rider lost nodes")
		}
		if !res.HitLimit {
			b.Fatal("large-n rider quiesced inside the event budget; raise the budget")
		}
	}
	b.ReportMetric(float64(largeNEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkLargeNRiderSerial(b *testing.B) { benchLargeNRider(b, -1) }
func BenchmarkLargeNRiderParallel(b *testing.B) {
	benchLargeNRider(b, runtime.GOMAXPROCS(0))
}

func benchLargeNACS(b *testing.B, workers int) {
	trust := quorum.NewThreshold(100, 33)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := acs.Run(acs.RunConfig{
			Trust: trust, Mode: gather.UsePlain,
			Latency: sim.UniformLatency{Min: 1, Max: 5},
			Seed:    int64(i), CoinSeed: int64(i) + 7,
			MaxEvents: largeNEvents, DeliveryWorkers: workers,
		})
		if res.Metrics.MessagesDelivered < largeNEvents {
			b.Fatalf("ACS delivered %d events, want >= %d", res.Metrics.MessagesDelivered, largeNEvents)
		}
	}
	b.ReportMetric(float64(largeNEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkLargeNACSSerial(b *testing.B) { benchLargeNACS(b, 0) }
func BenchmarkLargeNACSParallel(b *testing.B) {
	benchLargeNACS(b, runtime.GOMAXPROCS(0))
}

// Micro-benchmarks of the substrate hot paths. ---------------------------

// Copy-on-write pair-set snapshots: the per-trigger broadcast snapshot
// must stay O(1) and allocation-free regardless of set size.
func BenchmarkPairsSnapshot(b *testing.B) {
	p := gather.NewPairs(1024)
	for i := 0; i < 1024; i++ {
		p.Set(types.ProcessID(i), "v")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Snapshot(); s.IsZero() {
			b.Fatal("empty snapshot")
		}
	}
}

// The deferred-copy path: merging fresh pairs into a snapshot-protected
// set pays exactly one backing copy per snapshot, at first mutation.
func BenchmarkPairsMergeCOW(b *testing.B) {
	const n = 256
	base := gather.NewPairs(n)
	for i := 0; i < n/2; i++ {
		base.Set(types.ProcessID(i), "v")
	}
	delta := gather.NewPairs(n)
	for i := n / 2; i < n; i++ {
		delta.Set(types.ProcessID(i), "w")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base.Snapshot()
		if !p.Merge(delta) {
			b.Fatal("merge conflict")
		}
		if p.Len() != n {
			b.Fatal("merge lost pairs")
		}
	}
}

func BenchmarkSetIntersects(b *testing.B) {
	x := types.FullSet(64)
	y := types.NewSetOf(64, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Intersects(y) {
			b.Fatal("must intersect")
		}
	}
}

func BenchmarkQuorumPredicateCounterexample(b *testing.B) {
	sys := quorum.Counterexample()
	m := types.FullSet(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.HasQuorumWithin(types.ProcessID(i%30), m) {
			b.Fatal("full set must contain a quorum")
		}
	}
}

// Analysis engine: the word-compiled Validate/SatisfiesB3 sweeps against
// the retained naive nested-set-loop references, on an n=30 random
// asymmetric system (the quorumtool -search shape). The compiled pair
// must stay ≥2× ahead of its *Naive counterpart; make benchcmp guards
// the compiled numbers across recordings.

func analysisBenchSystem(b *testing.B) *quorum.System {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
		N: 30, NumSets: 2, MaxFault: 6, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.Validate() // compile the evaluator outside the timed loop
	return sys
}

func BenchmarkValidate(b *testing.B) {
	sys := analysisBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.Validate() != nil {
			b.Fatal("bench system must be valid")
		}
	}
}

func BenchmarkValidateNaive(b *testing.B) {
	sys := analysisBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.ValidateNaive() != nil {
			b.Fatal("bench system must be valid")
		}
	}
}

func BenchmarkSatisfiesB3(b *testing.B) {
	sys := analysisBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.SatisfiesB3() {
			b.Fatal("bench system must satisfy B3")
		}
	}
}

func BenchmarkSatisfiesB3Naive(b *testing.B) {
	sys := analysisBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.SatisfiesB3Naive() {
			b.Fatal("bench system must satisfy B3")
		}
	}
}

func BenchmarkAnalyzeSystem(b *testing.B) {
	sys := analysisBenchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := quorum.AnalyzeSystem(sys); !a.Valid || !a.B3 {
			b.Fatal("bench system must analyze clean")
		}
	}
}

// BenchmarkSearch is the quorumtool -search inner loop: generate random
// asymmetric systems across a parallel seed sweep and batch-analyze each.
func BenchmarkSearch(b *testing.B) {
	seeds := sim.SeedRange(1, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Sweep(seeds, 0, func(seed int64) bool {
			sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
				N: 12, NumSets: 2, MaxFault: 2, Seed: seed,
			})
			if err != nil {
				return false
			}
			return quorum.AnalyzeSystem(sys).Valid
		})
		valid := sim.Reduce(res, 0, func(acc int, _ int64, ok bool) int {
			if ok {
				acc++
			}
			return acc
		})
		if valid == 0 {
			b.Fatal("search produced no valid systems")
		}
	}
	b.ReportMetric(float64(len(seeds))*float64(b.N)/b.Elapsed().Seconds(), "systems/s")
}

func BenchmarkReliableBroadcastRound(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := gather.RunCluster(gather.RunConfig{
			Kind: gather.KindThreeRound, Trust: trust, Mode: gather.UseReliable,
			Latency: sim.ConstantLatency(1), Seed: int64(i),
		})
		if len(res.Outputs) != 4 {
			b.Fatal("missing outputs")
		}
	}
}

// Extension benchmarks: the additional primitives beyond the paper's core
// pipeline (see DESIGN.md §2: abba, revealed coin, Tusk-style two-round
// primitive) and the protocol-level ablations.

// Asymmetric binary agreement (Alpos et al. primitive): decision latency
// in rounds.
func BenchmarkBinaryAgreement(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	totalRounds, decisions := 0, 0
	for i := 0; i < b.N; i++ {
		n := trust.N()
		nodes := make([]sim.Node, n)
		raw := make([]*abba.Node, n)
		for k := range nodes {
			nd := abba.NewNode(abba.Config{Trust: trust, Coin: coin.NewPRF(int64(i), n), Input: k % 2})
			nodes[k] = nd
			raw[k] = nd
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: int64(i), Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
		r.Run(0)
		for _, nd := range raw {
			if _, ok := nd.Decided(); !ok {
				b.Fatal("agreement did not terminate")
			}
			totalRounds += nd.DecidedRound()
			decisions++
		}
	}
	if decisions > 0 {
		b.ReportMetric(float64(totalRounds)/float64(decisions), "rounds/decision")
	}
}

// Revealed-coin ablation: the share-gated coin's cost relative to direct
// PRF evaluation (compare with BenchmarkRiderAsymmetric4).
func BenchmarkRiderRevealedCoin4(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: harness.Asymmetric, Trust: trust, NumWaves: 8, TxPerBlock: 4,
			Seed: int64(i), CoinSeed: int64(i) * 13, RevealedCoin: true,
		})
		if err := res.CheckTotalOrder(types.FullSet(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// Tusk-style two-round primitive: the cheapest (and, asymmetrically,
// unsound) common-core attempt.
func BenchmarkGatherTwoRoundThreshold(b *testing.B) {
	trust := quorum.NewThreshold(7, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := trust.N()
		nodes := make([]sim.Node, n)
		for k := range nodes {
			nodes[k] = gather.NewTwoRoundNode(gather.Config{
				Trust: trust, Input: gather.InputValue(types.ProcessID(k)), Mode: gather.UseReliable,
			})
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: int64(i), Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
		r.Run(0)
	}
}

// ACS (E11): consensus-equivalent core-set agreement.
func BenchmarkACSThreshold7(b *testing.B) {
	trust := quorum.NewThreshold(7, 2)
	for i := 0; i < b.N; i++ {
		outputs := acs.RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 30}, int64(i), int64(i)+7, nil)
		if len(outputs) != 7 {
			b.Fatal("ACS incomplete")
		}
	}
}

// Binding gather (E12): the extra-round variant.
func BenchmarkGatherBindingCounterexample(b *testing.B) {
	sys := quorum.Counterexample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := sys.N()
		nodes := make([]sim.Node, n)
		for k := range nodes {
			nodes[k] = gather.NewBindingNode(gather.Config{
				Trust: sys, Input: gather.InputValue(types.ProcessID(k)), Mode: gather.UsePlain,
			})
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: int64(i), Latency: sim.UniformLatency{Min: 1, Max: 10}}, nodes)
		r.Run(0)
	}
}

// GC ablation (E13): bounded-memory consensus.
func BenchmarkRiderWithGC(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	for i := 0; i < b.N; i++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: harness.Asymmetric, Trust: trust, NumWaves: 8, TxPerBlock: 4,
			Seed: int64(i), CoinSeed: int64(i) * 13, GCDepth: 3,
		})
		if err := res.CheckTotalOrder(types.FullSet(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// Service mode (E14): sustained throughput of the long-lived replicated
// service — pipelined client batching, mandatory DAG GC, periodic
// snapshot/compaction. The /s metrics are wall-clock sustained rates (make
// benchcmp gates them against drops); the latency metrics are virtual-time
// commit latency of a replica's own commands, and peak-vertices is the
// GC-bounded live DAG headline.
func BenchmarkServiceSustained(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	var msgs, commits, applied, peak int
	var p50, p99 int64
	for i := 0; i < b.N; i++ {
		res := harness.RunService(harness.ServiceConfig{
			Trust: trust, Seed: int64(i), CoinSeed: int64(i)*17 + 3,
			StopAfterWaves: 20,
		})
		if !res.Stopped {
			b.Fatal("service run hit the event budget before the target wave")
		}
		if _, err := harness.CheckServiceSnapshots(res); err != nil {
			b.Fatal(err)
		}
		st := harness.SummarizeService(res)
		msgs += res.Metrics.MessagesDelivered
		for _, rep := range res.Replicas {
			commits += rep.Commits
			applied += rep.Applied
		}
		if st.Latency.P50 > p50 {
			p50 = st.Latency.P50
		}
		if st.Latency.P99 > p99 {
			p99 = st.Latency.P99
		}
		if st.PeakLiveVertices > peak {
			peak = st.PeakLiveVertices
		}
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(msgs)/sec, "msgs/s")
	b.ReportMetric(float64(commits)/sec, "commits/s")
	b.ReportMetric(float64(applied)/sec, "tx/s")
	b.ReportMetric(float64(p50), "p50-commit-vt")
	b.ReportMetric(float64(p99), "p99-commit-vt")
	b.ReportMetric(float64(peak), "peak-vertices")
}

// SWMR register: one write+read round trip across the cluster.
func BenchmarkRegisterWriteRead(b *testing.B) {
	trust := quorum.NewThreshold(4, 1)
	for i := 0; i < b.N; i++ {
		nodes := make([]sim.Node, 4)
		regs := make([]*register.Register, 4)
		for k := range nodes {
			k := k
			nodes[k] = &regDriver{mk: func(env sim.Env) *register.Register {
				r := register.New(env.Self(), 0, 4, trust)
				regs[k] = r
				return r
			}}
		}
		nodes[0].(*regDriver).script = func(env sim.Env, r *register.Register) {
			r.Write(env, "bench", func(env sim.Env) {
				r.Read(env, nil)
			})
		}
		r := sim.NewRunner(sim.Config{N: 4, Seed: int64(i), Latency: sim.ConstantLatency(1)}, nodes)
		r.Run(0)
	}
}

// regDriver adapts a Register to sim.Node for the benchmark.
type regDriver struct {
	mk     func(env sim.Env) *register.Register
	script func(env sim.Env, r *register.Register)
	reg    *register.Register
}

func (d *regDriver) Init(env sim.Env) {
	d.reg = d.mk(env)
	if d.script != nil {
		d.script(env, d.reg)
	}
}

func (d *regDriver) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	d.reg.Handle(env, from, msg)
}
