// Package asymdag is a from-scratch Go implementation of
// "DAG-based Consensus with Asymmetric Trust" (Amores-Sesar, Cachin,
// Villacis, Zanolini — PODC 2025, arXiv:2505.17891).
//
// It provides:
//
//   - Asymmetric Byzantine quorum systems: fail-prone systems, quorums,
//     kernels, the B3 existence condition, wise/naive classification and
//     guild computation (paper §2).
//   - The gather (common core) protocols of §3: the classic three-round
//     gather, the unsound quorum-replacement variant together with the
//     paper's 30-process counterexample (Lemma 3.2, Figures 1–4), and the
//     novel constant-round asymmetric gather (Algorithm 3).
//   - The first asymmetric DAG-based atomic-broadcast protocol
//     (Algorithms 4–6), plus the symmetric DAG-Rider baseline, running
//     over a deterministic discrete-event network simulator with
//     adversarial scheduling and fault injection.
//   - An incremental quorum-predicate engine (internal/quorum): explicit
//     systems compile into flattened bitset arrays with inverted indexes,
//     and every protocol tally holds an incremental tracker that answers
//     the HasQuorumWithin / HasKernelWithin triggers in O(1) amortized per
//     delivered message instead of re-scanning the quorum collection. See
//     internal/quorum/engine.go for the design and complexity bounds.
//   - A word-compiled analysis engine on the same evaluator: the
//     fail-prone system is flattened into popcount-ready words (sorted by
//     descending cardinality), so Validate (Definition 2.1), SatisfiesB3
//     (Definition 2.3), Tolerates and Wise run as word-parallel subset /
//     intersection sweeps with popcount pruning, and the batch
//     AnalyzeSystem API reports {valid, B3, c(Q), violation witness} in a
//     single pass per candidate system. Large random-system searches
//     (cmd/quorumtool -search, the §3.2 small-system sweep) run on this
//     path; the naive set-loop references remain as *Naive methods,
//     differential-tested against the compiled forms on hundreds of
//     random systems per `go test ./...`.
//   - Copy-on-write pair-set snapshots and pooled broadcast fan-out: the
//     gather S/T/U sets (gather.Pairs) snapshot in O(1) at every quorum
//     trigger — Snapshot marks the backing storage shared and the first
//     post-snapshot mutation copies it, so a broadcast payload can never
//     observe later changes of the live set (a differential suite pins
//     the aliasing semantics against a naive deep-copy reference). The
//     simulator delivers events through pooled per-process Envs and a
//     fan-out fast path that does per-message bookkeeping once per
//     broadcast, and the gather pending-acceptance buffers and DAG vertex
//     key digests run on free-lists — event delivery itself is
//     allocation-free, and cmd/benchdiff gates allocs/op and B/op next
//     to ns/op so the reduction stays durable.
//   - A parallel multi-seed sweep engine (internal/sim Sweep/Reduce and
//     the internal/harness Sweeper): independent seeded executions fan out
//     over a bounded worker pool with deterministic, worker-count-
//     independent aggregation — results positioned by seed, reductions in
//     seed order, panics attributed to the offending seed. It powers the
//     randomized protocol-property conformance suites (hundreds of random
//     trust systems per `go test ./...`), the multi-seed experiments, and
//     the cmd/riderbench and cmd/quorumtool search paths.
//   - A sharded deterministic event queue with parallel same-time
//     delivery (internal/sim): the scheduler keeps one (time, seq)-ordered
//     heap per receiver process, merged through a tournament tree over the
//     lane heads, so push/pop scales with a receiver's own backlog instead
//     of the total pending-event count and the merge front exposes which
//     receivers share the frontier timestamp. DeliveryWorkers > 0 (a knob
//     on sim.Config, harness.RiderConfig/ABBAConfig, acs.RunConfig and
//     ClusterConfig) executes those same-time, distinct-receiver handlers
//     concurrently on a bounded pool: every effect is buffered per
//     receiver and committed single-threaded in receiver-ID order, with
//     latency draws and sequence numbers assigned only at commit from the
//     run's one seeded RNG — so the parallel execution is a pure function
//     of the seed, byte-identical across 1/2/GOMAXPROCS workers (nodes
//     that call Env.Rand in Receive fall back to serial delivery). Serial
//     mode stays the default and is event-for-event identical to the
//     previous single 4-ary heap, pinned by a differential suite.
//     Cluster runs are also bounded by a generous MaxSteps event budget
//     (ClusterResult.HitLimit / RiderResult.HitLimit report truncation),
//     so a non-quiescing adversarial schedule can no longer hang a sweep.
//   - A declarative adversarial scenario engine (internal/scenario + the
//     harness scenario sweeps): scenarios compose timed link-fault rules
//     (drop, duplicate, extra delay, hold-until healing partitions,
//     probabilistic redelivery) with per-process fault wrappers (crash,
//     mute, crash-recover churn with buffered or lossy outages, selective
//     send, stale replay, equivocation), and declare the Definition 4.1
//     properties — total order, agreement, integrity, validity, liveness —
//     each run must keep for the maximal guild of the scenario's faulty
//     set. Rules compile into a sim.FaultPlane evaluated at the
//     simulator's single-threaded send- and deliver-commit points with the
//     run's seeded RNG, so every scenario execution is a pure function of
//     the seed — byte-identical across DeliveryWorkers counts. A registry
//     of built-in scenarios (BuiltinScenarios) backs the scenario × seed
//     conformance sweeps (SweepScenarios, with first-failing (scenario,
//     seed) attribution), the `scenarios` experiment, and
//     examples/faulttolerance.
//   - A shared framed binary wire codec (internal/wire) and a production
//     TCP transport (internal/transport): every protocol message type
//     registers a tagged exact-size codec built on uvarints, length-
//     prefixed strings and the raw bitset words types.Set already
//     carries, so the simulator's byte metrics (sim.MessageSize) and the
//     bytes a real deployment sends are equal by construction. The
//     transport drains bounded per-peer outboxes into batched length-
//     prefixed frames (one write syscall per drain, optional flate
//     compression); a full outbox blocks the sending node loop — explicit
//     backpressure, never drops or unbounded growth — connections are
//     validated and deduplicated keep-first at registration, and a failed
//     write re-queues the unsent tail so a reconnect resumes the stream
//     without loss. Per-peer counters surface frames/messages/bytes and
//     error/re-queue counts; `make transportbench` runs the race-checked
//     suite plus the 50-node loopback mesh benchmark (msgs/s, bytes/s).
//   - A long-lived replicated service mode (internal/service, public
//     ServiceConfig/RunService): instead of running N waves and stopping,
//     replicas run indefinitely — an admission-bounded client request
//     queue batches transactions into block payloads, wave proposal is
//     pipelined a bounded depth ahead of decisions, DAG garbage
//     collection is mandatory (the round window, broadcast slot trackers
//     and coin shares all prune below the decided horizon, so memory is
//     bounded for an unbounded run — a 500-wave rolling-churn soak pins
//     the live counters flat), and every few decided waves the replica
//     snapshots its StateMachine and compacts the applied log. Total
//     order makes snapshots byte-identical across replicas at every
//     shared decided wave (CheckServiceSnapshots verifies; a 100-seed
//     equivalence suite also replays the full log against each
//     snapshot). BenchmarkServiceSustained records sustained msgs/s,
//     commits/s and commit-latency percentiles, gated by `make benchcmp`
//     against throughput drops; examples/keyvalue is the runnable
//     flagship, riding out rolling churn with byte-identical snapshots.
//
// # Quickstart
//
//	trust := asymdag.NewThreshold(4, 1) // or any asymmetric System
//	cluster := asymdag.NewCluster(asymdag.ClusterConfig{
//		Trust:    trust,
//		NumWaves: 10,
//		Seed:     1,
//	})
//	cluster.Submit(0, "pay alice 5", "pay bob 3")
//	result := cluster.Run()
//	for _, tx := range result.Order(0) {
//		fmt.Println(tx)
//	}
//
// See the examples/ directory for runnable programs, cmd/experiments for
// the paper-reproduction harness, and DESIGN.md / EXPERIMENTS.md for the
// experiment index and measured results.
package asymdag
